// The scenario -> simdb bridge: compiling a ScenarioSpec into a
// SimulatedDatabase must preserve the planted surface bitwise, realize
// plan-equivalence classes as identical plan trees, and carry the neural
// arms (TCNN / LimeQO+) through the same grid invariants as the matrix
// policies — bitwise-deterministically across thread counts.

#include <cctype>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "plan/plan_node.h"
#include "scenarios/scenario.h"
#include "scenarios/simdb_bridge.h"
#include "scenarios/simulation.h"
#include "simdb/database.h"

namespace limeqo::scenarios {
namespace {

ScenarioSpec GridSpec(const std::string& name) {
  for (const ScenarioSpec& spec : ScenarioGrid()) {
    if (spec.name == name) return spec;
  }
  ADD_FAILURE() << "no grid scenario named " << name;
  return ScenarioSpec{};
}

// ---------------------------------------------------------------------------
// Compilation: the database must be a faithful realization of the spec.
// ---------------------------------------------------------------------------

TEST(SimDbBridgeTest, PlantedTruthMatchesSurfaceBitwise) {
  ScenarioSpec spec;
  spec.seed = 7;
  SimDbScenarioBackend bridge(spec);
  SyntheticBackend surface(spec);  // the same spec without the bridge
  const simdb::SimulatedDatabase& db = bridge.database();
  ASSERT_EQ(db.num_queries(), spec.num_queries);
  ASSERT_EQ(db.num_hints(), spec.num_hints);
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      ASSERT_EQ(bridge.TrueLatency(q, j), surface.TrueLatency(q, j));
      ASSERT_EQ(db.TrueLatency(q, j), surface.TrueLatency(q, j));
    }
  }
}

TEST(SimDbBridgeTest, ProvidesPlansAndCosts) {
  ScenarioSpec spec;
  spec.seed = 8;
  SimDbScenarioBackend bridge(spec);
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      const plan::PlanNode* plan = bridge.Plan(q, j);
      ASSERT_NE(plan, nullptr);
      EXPECT_GT(plan->est_cost, 0.0);
      EXPECT_GT(bridge.OptimizerCost(q, j), 0.0);
    }
  }
}

TEST(SimDbBridgeTest, EquivalenceClassesShareIdenticalPlans) {
  ScenarioSpec spec = GridSpec("plan-equivalence");
  SimDbScenarioBackend bridge(spec);
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      const uint64_t hash = plan::StructuralHash(*bridge.Plan(q, j));
      for (int other : bridge.EquivalentHints(q, j)) {
        EXPECT_EQ(plan::StructuralHash(*bridge.Plan(q, other)), hash)
            << "plan-equivalent hints " << j << " and " << other
            << " built different plans for query " << q;
        EXPECT_EQ(bridge.OptimizerCost(q, other), bridge.OptimizerCost(q, j));
        EXPECT_EQ(bridge.TrueLatency(q, other), bridge.TrueLatency(q, j));
      }
    }
  }
  // Distinct classes got distinct optimizer configurations.
  const simdb::SimulatedDatabase& db = bridge.database();
  std::set<int> configs;
  for (int j = 0; j < spec.num_hints; ++j) configs.insert(db.HintConfigId(j));
  const int classes =
      (spec.num_hints + spec.equivalence_class_size - 1) /
      spec.equivalence_class_size;
  EXPECT_EQ(static_cast<int>(configs.size()), classes);
}

TEST(SimDbBridgeTest, DriftKeepsDatabaseInSyncWithSurface) {
  ScenarioSpec spec;
  spec.seed = 9;
  SimDbScenarioBackend bridge(spec);
  const double cost_before = bridge.OptimizerCost(0, 1);
  (void)cost_before;
  bridge.ApplyDrift(1.0);
  const simdb::SimulatedDatabase& db = bridge.database();
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      ASSERT_EQ(db.TrueLatency(q, j), bridge.TrueLatency(q, j))
          << "database truth stale after drift at (" << q << "," << j << ")";
    }
  }
  // Plans rebuild against the new surface (cost anchors move with truth).
  for (int q = 0; q < spec.num_queries; ++q) {
    EXPECT_GT(bridge.Plan(q, 1)->est_cost, 0.0);
  }
}

TEST(SimDbBridgeTest, CreateFromPlantedRejectsInconsistentClasses) {
  ScenarioSpec spec;
  spec.num_queries = 4;
  spec.num_hints = 4;
  SyntheticBackend surface(spec);

  simdb::PlantedDatabaseSpec planted;
  Rng rng(1);
  planted.catalog = simdb::Catalog::Random(6, &rng);
  simdb::QueryGenerator qgen(&planted.catalog, 2, 3);
  for (int i = 0; i < 4; ++i) planted.queries.push_back(qgen.Generate(&rng));
  planted.hint_configs = {0, 1, 2, 3};
  planted.truth = surface.truth();
  // Claim hints 2 and 3 are one class but leave their configs (and planted
  // latencies) different: the factory must reject the contradiction.
  planted.representative.assign(static_cast<size_t>(4) * 4, 0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      planted.representative[static_cast<size_t>(i) * 4 + j] =
          j == 3 ? 2 : j;
    }
  }
  StatusOr<simdb::SimulatedDatabase> db =
      simdb::SimulatedDatabase::CreateFromPlanted(std::move(planted));
  EXPECT_FALSE(db.ok());
}

// ---------------------------------------------------------------------------
// The acceptance bar: grid scenarios end-to-end through the bridge with the
// neural arms, under the full invariant checks.
// ---------------------------------------------------------------------------

class BridgeGridTest
    : public ::testing::TestWithParam<std::tuple<std::string, PredictorArm>> {
};

TEST_P(BridgeGridTest, NeuralArmInvariantsHold) {
  const ScenarioSpec spec = GridSpec(std::get<0>(GetParam()));
  RunConfig config;
  config.world = WorldKind::kSimDb;
  config.arm = std::get<1>(GetParam());
  SimulationDriver driver(spec);
  const SimulationResult result = driver.Run(config);
  EXPECT_TRUE(result.ok())
      << "invariants violated; reproduce with spec {" << Describe(spec)
      << "} arm=" << PredictorArmName(config.arm) << "\n"
      << result.Summary();
  EXPECT_GT(result.executions, 0) << Describe(spec);
  if (spec.online_servings > 0) {
    EXPECT_GT(result.servings, 0) << Describe(spec);
  }
}

std::string BridgeParamName(
    const ::testing::TestParamInfo<std::tuple<std::string, PredictorArm>>&
        info) {
  std::string name = std::get<0>(info.param) + "_" +
                     PredictorArmName(std::get<1>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

// Six grid worlds through the bridge, alternating the two neural arms so
// both TCNN (plain, no embeddings) and LimeQO+ (transductive) see timeout,
// heavy-tail, plan-equivalence, drift, and arrival regimes.
// "arrival-midstream" under LimeQO+ exercises TcnnModel::GrowQueries (the
// embedding table must grow when rows arrive mid-run).
INSTANTIATE_TEST_SUITE_P(
    Grid, BridgeGridTest,
    ::testing::Values(
        std::make_tuple(std::string("baseline"), PredictorArm::kLimeQoPlus),
        std::make_tuple(std::string("plan-equivalence"),
                        PredictorArm::kLimeQoPlus),
        std::make_tuple(std::string("arrival-midstream"),
                        PredictorArm::kLimeQoPlus),
        std::make_tuple(std::string("heavy-tail-mild"), PredictorArm::kTcnn),
        std::make_tuple(std::string("tight-timeouts"), PredictorArm::kTcnn),
        std::make_tuple(std::string("drift-single"), PredictorArm::kTcnn)),
    BridgeParamName);

// The matrix arms must run unchanged behind the bridge too: the bridge is a
// strict superset of the synthetic surface.
TEST(BridgeGridTest, CompleterArmRunsThroughBridge) {
  const ScenarioSpec spec = GridSpec("baseline");
  RunConfig config;
  config.world = WorldKind::kSimDb;
  SimulationDriver driver(spec);
  const SimulationResult result = driver.Run(config);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

// ---------------------------------------------------------------------------
// Whole-pipeline determinism through the bridge: world compilation, TCNN
// training, and the serving loops must be bitwise identical across thread
// counts (the TCNN is scalar by design; the linalg core is
// thread-count-invariant by contract).
// ---------------------------------------------------------------------------

TEST(BridgeGridTest, BridgeRunIsBitwiseDeterministicAcrossThreadCounts) {
  const ScenarioSpec spec = GridSpec("baseline");
  RunConfig config;
  config.world = WorldKind::kSimDb;
  config.arm = PredictorArm::kLimeQoPlus;
  SetNumThreads(1);
  const SimulationResult single = SimulationDriver(spec).Run(config);
  SetNumThreads(8);
  const SimulationResult multi = SimulationDriver(spec).Run(config);
  SetNumThreads(1);
  ASSERT_TRUE(single.ok()) << single.Summary();
  ASSERT_TRUE(multi.ok()) << multi.Summary();
  EXPECT_EQ(single.final_latency, multi.final_latency);
  EXPECT_EQ(single.offline_seconds, multi.offline_seconds);
  EXPECT_EQ(single.executions, multi.executions);
  EXPECT_EQ(single.timeouts, multi.timeouts);
  EXPECT_EQ(single.explorations, multi.explorations);
  EXPECT_EQ(single.regret_spent, multi.regret_spent);
}

}  // namespace
}  // namespace limeqo::scenarios
