#include <cmath>

#include <gtest/gtest.h>

#include "plan/featurize.h"
#include "plan/plan_node.h"

namespace limeqo::plan {
namespace {

std::unique_ptr<PlanNode> SmallJoinPlan() {
  auto l = PlanNode::MakeScan(Operator::kSeqScan, 0, 100.0, 50.0);
  auto r = PlanNode::MakeScan(Operator::kIndexScan, 1, 20.0, 5.0);
  return PlanNode::MakeJoin(Operator::kHashJoin, std::move(l), std::move(r),
                            200.0, 40.0);
}

TEST(PlanNodeTest, OperatorPredicates) {
  EXPECT_TRUE(IsScan(Operator::kSeqScan));
  EXPECT_TRUE(IsScan(Operator::kIndexOnlyScan));
  EXPECT_FALSE(IsScan(Operator::kHashJoin));
  EXPECT_TRUE(IsJoin(Operator::kMergeJoin));
  EXPECT_FALSE(IsJoin(Operator::kIndexScan));
}

TEST(PlanNodeTest, OperatorNamesDistinct) {
  EXPECT_STREQ(OperatorName(Operator::kNestedLoopJoin), "NestedLoopJoin");
  EXPECT_STRNE(OperatorName(Operator::kSeqScan),
               OperatorName(Operator::kIndexScan));
}

TEST(PlanNodeTest, StructureAccessors) {
  auto plan = SmallJoinPlan();
  EXPECT_EQ(plan->NumNodes(), 3);
  EXPECT_EQ(plan->Height(), 2);
  EXPECT_EQ(plan->ToString(), "HashJoin(SeqScan(t0), IndexScan(t1))");
}

TEST(PlanNodeTest, CloneIsDeepAndEqual) {
  auto plan = SmallJoinPlan();
  auto copy = plan->Clone();
  EXPECT_TRUE(plan->Equals(*copy));
  copy->left->est_cost = 999.0;
  EXPECT_FALSE(plan->Equals(*copy));
  EXPECT_DOUBLE_EQ(plan->left->est_cost, 100.0);  // original untouched
}

TEST(PlanNodeTest, ValidateAcceptsWellFormed) {
  auto plan = SmallJoinPlan();
  EXPECT_TRUE(ValidatePlan(*plan).ok());
}

TEST(PlanNodeTest, ValidateRejectsScanWithChild) {
  auto plan = SmallJoinPlan();
  plan->op = Operator::kSeqScan;
  plan->table_id = 0;
  EXPECT_FALSE(ValidatePlan(*plan).ok());
}

TEST(PlanNodeTest, ValidateRejectsNegativeEstimates) {
  auto plan = SmallJoinPlan();
  plan->est_cost = -1.0;
  EXPECT_FALSE(ValidatePlan(*plan).ok());
}

TEST(FeaturizeTest, NodeFeatureLayout) {
  auto scan = PlanNode::MakeScan(Operator::kIndexScan, 3, 10.0, 4.0);
  std::vector<double> f = FeaturizeNode(*scan);
  ASSERT_EQ(static_cast<int>(f.size()), kNodeFeatureDim);
  // One-hot at the operator position, zero elsewhere.
  for (int op = 0; op < kNumOperators; ++op) {
    EXPECT_DOUBLE_EQ(f[op],
                     op == static_cast<int>(Operator::kIndexScan) ? 1.0 : 0.0);
  }
  EXPECT_DOUBLE_EQ(f[kNumOperators], std::log1p(10.0));
  EXPECT_DOUBLE_EQ(f[kNumOperators + 1], std::log1p(4.0));
}

TEST(FeaturizeTest, FlattenPreservesStructure) {
  auto plan = SmallJoinPlan();
  FlatPlan flat = FlattenPlan(*plan);
  ASSERT_EQ(flat.num_nodes(), 3);
  // Preorder: root at 0, left subtree, right subtree.
  EXPECT_EQ(flat.left_child[0], 1);
  EXPECT_EQ(flat.right_child[0], 2);
  EXPECT_EQ(flat.left_child[1], -1);
  EXPECT_EQ(flat.right_child[1], -1);
  // Root features match the join one-hot.
  EXPECT_DOUBLE_EQ(flat.node_features[0][static_cast<int>(Operator::kHashJoin)],
                   1.0);
}

TEST(FeaturizeTest, FlattenDeepTree) {
  // Left-deep chain of 4 joins over 5 scans: 9 nodes.
  auto current = PlanNode::MakeScan(Operator::kSeqScan, 0, 1, 1);
  for (int i = 1; i <= 4; ++i) {
    auto rhs = PlanNode::MakeScan(Operator::kSeqScan, i, 1, 1);
    current = PlanNode::MakeJoin(Operator::kNestedLoopJoin,
                                 std::move(current), std::move(rhs), 1, 1);
  }
  FlatPlan flat = FlattenPlan(*current);
  EXPECT_EQ(flat.num_nodes(), 9);
  // Every node index referenced as a child is in range.
  for (int i = 0; i < flat.num_nodes(); ++i) {
    EXPECT_LT(flat.left_child[i], flat.num_nodes());
    EXPECT_LT(flat.right_child[i], flat.num_nodes());
  }
}

}  // namespace
}  // namespace limeqo::plan
