// Fault injection across the engine lifecycle. FaultyBackend's schedule is
// seed-pure, so every fault world is exactly as reproducible as the
// fault-free world it wraps — which lets the driver keep its determinism
// and statistical contracts under faults: the epoch-synchronized serving
// trace stays bitwise identical at every thread count, every free-running
// invariant holds in every fault world, retries and backoff never
// double-charge the offline clock or the regret ledger, and graceful
// degradation (fall back to the default hint, report non-exploratory with
// zero regret) keeps the fault cost in the result's fault block and
// nowhere else.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "proptest.h"
#include "scenarios/faulty_backend.h"
#include "scenarios/scenario.h"
#include "scenarios/simulation.h"
#include "scenarios/synthetic_backend.h"

namespace limeqo::scenarios {
namespace {

ScenarioSpec SmallWorld(uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "fault-world";
  spec.num_queries = 24;
  spec.num_hints = 8;
  spec.latent_rank = 2;
  spec.online_servings = 240;
  spec.epsilon = 0.2;
  spec.seed = seed;
  return spec;
}

// ---------------------------------------------------------------------------
// The schedule itself: seed-pure and replayable.
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, ExecutionFaultsReplayIdenticallyForTheSameSeed) {
  ScenarioSpec spec = SmallWorld(301);
  FaultSpec faults;
  faults.execute_failure_prob = 0.2;
  faults.spike_prob = 0.15;
  faults.spike_factor = 6.0;
  faults.storm_period = 10;
  faults.storm_length = 4;

  std::vector<core::BackendResult> first;
  for (int pass = 0; pass < 2; ++pass) {
    FaultyBackend backend(std::make_unique<SyntheticBackend>(spec), faults,
                          /*max_retries=*/2, /*backoff_seconds=*/0.01);
    std::vector<core::BackendResult> results;
    for (int i = 0; i < 200; ++i) {
      const int q = i % spec.num_queries;
      const int h = i % spec.num_hints;
      results.push_back(backend.Execute(q, h, /*timeout_seconds=*/0.5));
    }
    if (pass == 0) {
      first = results;
      EXPECT_GT(backend.exec_failures(), 0);
      EXPECT_GT(backend.spikes_injected(), 0);
      EXPECT_GT(backend.storm_timeouts(), 0);
      EXPECT_GT(backend.backoff_seconds(), 0.0);
    } else {
      ASSERT_EQ(results.size(), first.size());
      for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].observed_latency, first[i].observed_latency)
            << "execution " << i;
        EXPECT_EQ(results[i].timed_out, first[i].timed_out);
        EXPECT_EQ(results[i].failed, first[i].failed);
      }
    }
  }
}

TEST(FaultScheduleTest, ServingFaultsArePurePerAttemptAndSpareTheDefault) {
  ScenarioSpec spec = SmallWorld(302);
  FaultSpec faults;
  faults.serve_failure_prob = 0.3;
  FaultyBackend backend(std::make_unique<SyntheticBackend>(spec), faults, 3,
                        0.01);
  int failures = 0;
  for (uint64_t s = 0; s < 400; ++s) {
    const int q = static_cast<int>(s) % spec.num_queries;
    const int h = 1 + static_cast<int>(s) % (spec.num_hints - 1);
    const bool fails = backend.ServeAttemptFails(q, h, s, 0);
    // Pure: the same (query, hint, seq, attempt) always rolls the same way.
    EXPECT_EQ(fails, backend.ServeAttemptFails(q, h, s, 0));
    // Independent attempts may differ, but the default hint never fails —
    // degradation always terminates.
    EXPECT_FALSE(backend.ServeAttemptFails(q, 0, s, 0));
    failures += fails ? 1 : 0;
  }
  EXPECT_GT(failures, 400 * 0.3 / 2);
  EXPECT_LT(failures, 400 * 0.3 * 2);
}

TEST(FaultWorldsTest, LookupByNameFindsEveryWorldAndRejectsUnknown) {
  const std::vector<FaultSpec> worlds = FaultWorlds();
  ASSERT_GE(worlds.size(), 5u);
  EXPECT_EQ(worlds.front().name, "none");
  EXPECT_FALSE(worlds.front().any());
  for (const FaultSpec& w : worlds) {
    const StatusOr<FaultSpec> found = FaultWorldByName(w.name);
    ASSERT_TRUE(found.ok()) << w.name;
    EXPECT_EQ(found->name, w.name);
  }
  const StatusOr<FaultSpec> missing = FaultWorldByName("perfectly-reliable");
  EXPECT_FALSE(missing.ok());
  // The error names the valid worlds, so a CLI typo is self-correcting.
  EXPECT_NE(missing.status().message().find("chaos"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Driver contracts under faults.
// ---------------------------------------------------------------------------

TEST(FaultDriverTest, EpochModeTraceIsBitwiseIdenticalAtEveryThreadCount) {
  for (const FaultSpec& faults : FaultWorlds()) {
    RunConfig base;
    base.policy = PolicyKind::kModelGuided;
    base.completer = CompleterKind::kAls;
    base.faults = faults;
    base.serve_threads = 1;
    const SimulationResult single = SimulationDriver(SmallWorld(303)).Run(base);
    ASSERT_TRUE(single.ok()) << faults.name << "\n" << single.Summary();
    for (const int threads : {2, 4}) {
      RunConfig config = base;
      config.serve_threads = threads;
      const SimulationResult multi =
          SimulationDriver(SmallWorld(303)).Run(config);
      ASSERT_TRUE(multi.ok()) << faults.name << "\n" << multi.Summary();
      ASSERT_EQ(single.serving_trace.size(), multi.serving_trace.size());
      for (size_t s = 0; s < single.serving_trace.size(); ++s) {
        ASSERT_TRUE(single.serving_trace[s] == multi.serving_trace[s])
            << faults.name << " diverges at serving " << s << " with "
            << threads << " threads";
      }
      // Fault accounting is part of the deterministic outcome.
      EXPECT_EQ(single.fault_serve_failures, multi.fault_serve_failures);
      EXPECT_EQ(single.fault_serve_fallbacks, multi.fault_serve_fallbacks);
      EXPECT_EQ(single.regret_spent, multi.regret_spent);
    }
  }
}

TEST(FaultDriverTest, EveryFaultWorldKeepsEveryInvariantInEveryServingMode) {
  for (const FaultSpec& faults : FaultWorlds()) {
    for (const int mode : {0, 1, 2}) {  // sync, epoch, free-running
      RunConfig config;
      config.policy = PolicyKind::kModelGuided;
      config.completer = CompleterKind::kAls;
      config.faults = faults;
      config.serve_threads = mode == 0 ? 0 : 3;
      config.free_running = mode == 2;
      const SimulationResult result =
          SimulationDriver(SmallWorld(304 + mode)).Run(config);
      EXPECT_TRUE(result.ok())
          << "world '" << faults.name << "' mode " << mode << "\n"
          << result.Summary();
      // The per-attempt serving-failure channel (ServeAttemptFails) only
      // exists on the concurrent serving plane; the synchronous path
      // degrades through failed executions instead.
      if (mode != 0 && faults.serve_failure_prob > 0.0) {
        EXPECT_GT(result.fault_serve_failures, 0) << faults.name;
      }
      if (faults.execute_failure_prob > 0.0) {
        EXPECT_GT(result.fault_exec_failures, 0) << faults.name;
      }
    }
  }
}

TEST(FaultDriverTest, RetriesAndBackoffNeverDoubleChargeAnyBudget) {
  // Same world, same seed, with and without execution faults: the faulted
  // run must charge the offline clock only for executions that really
  // produced a measurement (plus nothing for backoff), and the regret
  // ledger must stay within the configured budget exactly as in the
  // fault-free run. "Double charging" would show up as offline_seconds
  // growing with the retry count or as backoff leaking into either budget.
  const ScenarioSpec spec = SmallWorld(305);
  RunConfig clean;
  clean.policy = PolicyKind::kModelGuided;
  clean.completer = CompleterKind::kAls;
  const SimulationResult fault_free = SimulationDriver(spec).Run(clean);
  ASSERT_TRUE(fault_free.ok()) << fault_free.Summary();

  RunConfig faulted = clean;
  faulted.faults = *FaultWorldByName("flaky");
  faulted.max_retries = 5;
  faulted.retry_backoff_seconds = 10.0;  // enormous, so leakage is loud
  const SimulationResult result = SimulationDriver(spec).Run(faulted);
  ASSERT_TRUE(result.ok()) << result.Summary();

  EXPECT_GT(result.fault_exec_retries, 0);
  EXPECT_GT(result.fault_backoff_seconds, 0.0);
  // The offline budget cap is enforced on charged executions in both runs
  // (with the usual one-execution overshoot allowance); backoff — hundreds
  // of accounted seconds here — must not appear in it.
  const SyntheticBackend reference(spec);
  const double budget =
      spec.budget_fraction * reference.DefaultWorkloadLatency();
  const double slack = reference.MaxTrueLatency();
  EXPECT_LE(fault_free.offline_seconds, budget + slack + 1e-9);
  EXPECT_LE(result.offline_seconds, budget + slack + 1e-9)
      << "backoff or retries leaked into the offline clock";
  // ok() above already asserts the online-regret-budget invariant with the
  // mode's exact allowance — the ledger is clean in both runs.
}

TEST(FaultDriverTest, ColdStartFleetSurvivesEveryFaultWorld) {
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  const auto it =
      std::find_if(grid.begin(), grid.end(), [](const ScenarioSpec& s) {
        return s.name == "cold-start-fleet";
      });
  ASSERT_NE(it, grid.end());
  for (const FaultSpec& faults : FaultWorlds()) {
    RunConfig config;
    config.policy = PolicyKind::kModelGuided;
    config.completer = CompleterKind::kAls;
    config.faults = faults;
    config.serve_threads = 2;
    const SimulationResult result = SimulationDriver(*it).Run(config);
    EXPECT_TRUE(result.ok()) << faults.name << "\n" << result.Summary();
    EXPECT_EQ(result.arrivals, it->num_queries) << faults.name;
  }
}

// ---------------------------------------------------------------------------
// Property: random worlds x random fault specs x random serving modes, all
// invariants hold and the fault accounting is internally consistent.
// ---------------------------------------------------------------------------

TEST(FaultPropertyTest, RandomFaultWorldsKeepAllInvariants) {
  proptest::Config config;
  config.runs = 10;
  proptest::Check(
      "driver invariants hold under random fault schedules",
      [](proptest::Params& p) {
        ScenarioSpec spec;
        spec.name = "fault-prop";
        spec.num_queries = static_cast<int>(p.Int(10, 40));
        spec.num_hints = static_cast<int>(p.Int(4, 10));
        spec.latent_rank = static_cast<int>(p.Int(1, 3));
        spec.noise_sigma = p.Double(0.0, 0.2);
        spec.use_timeouts = p.Bool(0.8);
        spec.online_servings = static_cast<int>(p.Int(40, 200));
        spec.epsilon = p.Double(0.05, 0.3);
        spec.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));

        RunConfig run;
        run.policy = static_cast<PolicyKind>(p.Int(0, 2));
        run.completer = CompleterKind::kAls;
        run.faults.name = "random";
        run.faults.execute_failure_prob = p.Double(0.0, 0.3);
        run.faults.serve_failure_prob = p.Double(0.0, 0.25);
        run.faults.spike_prob = p.Double(0.0, 0.2);
        run.faults.spike_factor = p.Double(1.0, 10.0);
        if (p.Bool(0.5)) {
          run.faults.storm_period = static_cast<int>(p.Int(5, 60));
          run.faults.storm_length = static_cast<int>(p.Int(1, 10));
        }
        run.faults.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));
        run.max_retries = static_cast<int>(p.Int(0, 5));
        run.retry_backoff_seconds = p.Double(0.0, 1.0);
        const int mode = static_cast<int>(p.Int(0, 2));
        run.serve_threads = mode == 0 ? 0 : static_cast<int>(p.Int(1, 4));
        run.free_running = mode == 2;

        const SimulationResult result = SimulationDriver(spec).Run(run);
        if (!result.ok()) {
          std::fprintf(stderr, "world {%s} faults p_exec=%.3f p_serve=%.3f\n%s\n",
                       Describe(spec).c_str(),
                       run.faults.execute_failure_prob,
                       run.faults.serve_failure_prob,
                       result.Summary().c_str());
          return false;
        }
        // Accounting consistency: fallbacks only happen after failures,
        // retries imply accounted backoff (when a base is configured), and
        // nothing is negative.
        if (result.fault_serve_fallbacks > 0 &&
            result.fault_serve_failures < result.fault_serve_fallbacks) {
          std::fprintf(stderr, "fallbacks (%d) without failures (%d)\n",
                       result.fault_serve_fallbacks,
                       result.fault_serve_failures);
          return false;
        }
        if (run.retry_backoff_seconds > 0.0 && result.fault_exec_retries > 0 &&
            result.fault_backoff_seconds <= 0.0) {
          std::fprintf(stderr, "retries without accounted backoff\n");
          return false;
        }
        return result.fault_exec_failures >= 0 &&
               result.fault_exec_exhausted >= 0 &&
               result.fault_backoff_seconds >= 0.0;
      },
      config);
}

}  // namespace
}  // namespace limeqo::scenarios
