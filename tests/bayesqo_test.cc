#include <cmath>

#include <gtest/gtest.h>

#include "bayesqo/bayesqo.h"
#include "bayesqo/gaussian_process.h"
#include "core/simdb_backend.h"
#include "simdb/database.h"
#include "simdb/hint.h"

namespace limeqo::bayesqo {
namespace {

std::vector<double> HintBitsFeature(int hint) {
  const simdb::HintConfig& config = simdb::AllHints()[hint];
  const int bits = config.ToBits();
  std::vector<double> f(6);
  for (int b = 0; b < 6; ++b) f[b] = (bits >> b) & 1;
  return f;
}

TEST(NormalDistTest, PdfAndCdfSanity) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0) + NormalCdf(-3.0), 1.0, 1e-12);
  EXPECT_GT(NormalCdf(2.0), 0.97);
}

TEST(GaussianProcessTest, InterpolatesTrainingPoints) {
  GaussianProcess gp;
  std::vector<std::vector<double>> x{{0, 0}, {1, 0}, {0, 1}};
  std::vector<double> y{1.0, 2.0, 3.0};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < x.size(); ++i) {
    GpPosterior post = gp.Predict(x[i]);
    EXPECT_NEAR(post.mean, y[i], 0.05);
    EXPECT_LT(post.variance, 0.01);
  }
}

TEST(GaussianProcessTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit({{0.0}}, {1.0}).ok());
  GpPosterior near = gp.Predict({0.1});
  GpPosterior far = gp.Predict({5.0});
  EXPECT_LT(near.variance, far.variance);
}

TEST(GaussianProcessTest, RejectsEmptyOrMismatched) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{1.0}}, {1.0, 2.0}).ok());
}

TEST(GaussianProcessTest, ExpectedImprovementFavorsUnexplored) {
  GaussianProcess gp;
  // Observed: mediocre value at origin.
  ASSERT_TRUE(gp.Fit({{0.0, 0.0}}, {5.0}).ok());
  const double ei_near = gp.ExpectedImprovement({0.05, 0.0}, 5.0);
  const double ei_far = gp.ExpectedImprovement({3.0, 3.0}, 5.0);
  EXPECT_GT(ei_far, ei_near);
  EXPECT_GE(ei_near, 0.0);
}

simdb::SimulatedDatabase MakeDb(int n) {
  simdb::DatabaseOptions opt;
  opt.num_tables = 12;
  opt.latency.target_default_total = 1.6 * n;  // JOB-like per-query scale
  opt.latency.target_optimal_total = 0.6 * n;
  opt.seed = 31;
  StatusOr<simdb::SimulatedDatabase> db =
      simdb::SimulatedDatabase::Create(n, opt);
  LIMEQO_CHECK(db.ok());
  return std::move(db).value();
}

TEST(PerQueryBayesOptTest, SpendsAboutPerQueryBudget) {
  simdb::SimulatedDatabase db = MakeDb(20);
  core::SimDbBackend backend(&db);
  BayesQoOptions opt;
  opt.per_query_budget_seconds = 3.0;
  PerQueryBayesOpt bo(&backend, HintBitsFeature, opt);
  std::vector<core::TrajectoryPoint> traj = bo.Run();
  ASSERT_FALSE(traj.empty());
  // The budget is enforced via timeouts, so total time is close to
  // n * budget (rows that get fully explored early can stop sooner).
  EXPECT_LE(bo.offline_seconds(), 20 * 3.0 + 1e-6);
  EXPECT_GT(bo.offline_seconds(), 20 * 3.0 * 0.5);
}

TEST(PerQueryBayesOptTest, NeverRegresses) {
  simdb::SimulatedDatabase db = MakeDb(15);
  core::SimDbBackend backend(&db);
  BayesQoOptions opt;
  PerQueryBayesOpt bo(&backend, HintBitsFeature, opt);
  bo.Run();
  const core::WorkloadMatrix& w = bo.matrix();
  for (int i = 0; i < w.num_queries(); ++i) {
    EXPECT_LE(w.RowMinObserved(i), db.TrueLatency(i, 0) + 1e-9);
  }
}

TEST(PerQueryBayesOptTest, TrajectoryMonotone) {
  simdb::SimulatedDatabase db = MakeDb(15);
  core::SimDbBackend backend(&db);
  BayesQoOptions opt;
  PerQueryBayesOpt bo(&backend, HintBitsFeature, opt);
  std::vector<core::TrajectoryPoint> traj = bo.Run();
  for (size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LE(traj[i].workload_latency,
              traj[i - 1].workload_latency + 1e-9);
    EXPECT_GE(traj[i].offline_seconds, traj[i - 1].offline_seconds);
  }
}

TEST(PerQueryBayesOptTest, SurrogateOverheadConsumesBudget) {
  simdb::SimulatedDatabase db = MakeDb(15);
  BayesQoOptions cheap;
  cheap.per_query_budget_seconds = 2.0;
  BayesQoOptions expensive = cheap;
  expensive.surrogate_overhead_seconds = 1.0;

  core::SimDbBackend backend_a(&db);
  PerQueryBayesOpt fast(&backend_a, HintBitsFeature, cheap);
  fast.Run();
  core::SimDbBackend backend_b(&db);
  PerQueryBayesOpt slow(&backend_b, HintBitsFeature, expensive);
  slow.Run();

  // With overhead charged against the fixed budget, fewer cells get
  // observed and the final workload latency cannot be better.
  EXPECT_LT(slow.matrix().NumComplete() + slow.matrix().NumCensored(),
            fast.matrix().NumComplete() + fast.matrix().NumCensored());
  EXPECT_GE(slow.matrix().CurrentWorkloadLatency(),
            fast.matrix().CurrentWorkloadLatency() - 1e-9);
}

}  // namespace
}  // namespace limeqo::bayesqo
