#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/als.h"
#include "core/engine.h"
#include "core/online_explorer.h"

namespace limeqo::core {
namespace {

/// A small synthetic serving loop: true latencies follow a planted pattern
/// (hint t is the winner for every query), defaults are observed, and the
/// optimizer serves a stream of repetitive queries.
struct Harness {
  static constexpr int kQueries = 30;
  static constexpr int kHints = 8;
  static constexpr int kBestHint = 5;

  linalg::Matrix truth{kQueries, kHints};
  std::unique_ptr<CompleterPredictor> predictor;
  std::unique_ptr<ExplorationEngine> engine;

  explicit Harness(uint64_t seed) {
    WorkloadMatrix initial{kQueries, kHints};
    Rng rng(seed);
    for (int i = 0; i < kQueries; ++i) {
      const double base = rng.LogNormal(0.0, 1.0);
      for (int j = 0; j < kHints; ++j) {
        const double factor = j == kBestHint ? 0.4 : rng.Uniform(0.9, 2.0);
        truth(i, j) = base * factor;
      }
      initial.Observe(i, 0, truth(i, 0));
    }
    predictor = std::make_unique<CompleterPredictor>(
        std::make_unique<AlsCompleter>());
    engine = std::make_unique<ExplorationEngine>(std::move(initial),
                                                 predictor.get());
  }

  const WorkloadMatrix& matrix() const { return engine->matrix(); }

  /// Serves `count` round-robin queries through `opt`; returns total time.
  double Serve(OnlineExplorationOptimizer* opt, int count) {
    double total = 0.0;
    for (int s = 0; s < count; ++s) {
      const int q = s % kQueries;
      const int hint = opt->ChooseHint(q);
      const double latency = truth(q, hint);
      total += latency;
      opt->ReportLatency(q, hint, latency);
    }
    return total;
  }
};

TEST(OnlineExplorerTest, EpsilonZeroNeverExplores) {
  Harness h(1);
  OnlineExplorationOptions options;
  options.epsilon = 0.0;
  OnlineExplorationOptimizer opt(h.engine.get(), options);
  h.Serve(&opt, 300);
  EXPECT_EQ(opt.explorations(), 0);
  EXPECT_DOUBLE_EQ(opt.regret_spent(), 0.0);
  // With no exploration, only hint 0 is ever observed.
  for (int i = 0; i < Harness::kQueries; ++i) {
    for (int j = 1; j < Harness::kHints; ++j) {
      EXPECT_TRUE(h.matrix().IsUnobserved(i, j));
    }
  }
}

TEST(OnlineExplorerTest, ExplorationFillsCellsAndFindsFasterPlans) {
  Harness h(2);
  OnlineExplorationOptions options;
  options.epsilon = 0.3;
  options.min_predicted_ratio = 0.05;
  options.regret_budget_seconds = 1e9;  // effectively unlimited
  OnlineExplorationOptimizer opt(h.engine.get(), options);
  h.Serve(&opt, 1500);
  EXPECT_GT(opt.explorations(), 0);
  // Exploration should have verified faster-than-default plans for a good
  // share of the workload, purely from production traffic.
  OnlineOptimizer verified(&h.matrix());
  int improved = 0;
  for (int i = 0; i < Harness::kQueries; ++i) {
    if (verified.HasVerifiedPlan(i)) ++improved;
  }
  EXPECT_GE(improved, Harness::kQueries / 2);
}

TEST(OnlineExplorerTest, RegretNeverExceedsBudgetByOneServing) {
  Harness h(3);
  OnlineExplorationOptions options;
  options.epsilon = 0.5;
  options.min_predicted_ratio = 0.0;
  options.regret_budget_seconds = 2.0;
  OnlineExplorationOptimizer opt(h.engine.get(), options);
  h.Serve(&opt, 2000);
  // The budget check happens before serving, so at most one exploratory
  // serving can overshoot; its regret is bounded by one plan's latency.
  double worst = 0.0;
  for (size_t i = 0; i < h.truth.size(); ++i) {
    worst = std::max(worst, h.truth.data()[i]);
  }
  EXPECT_LE(opt.regret_spent(), 2.0 + worst);
}

TEST(OnlineExplorerTest, NoExplorationAfterBudgetExhausted) {
  Harness h(4);
  OnlineExplorationOptions options;
  options.epsilon = 1.0;
  options.min_predicted_ratio = 0.0;
  options.regret_budget_seconds = 0.5;
  // Disable the per-serving risk gate so the budget actually exhausts
  // (with the gate, exploration just tapers off as the budget shrinks).
  options.max_baseline_budget_fraction = 1e18;
  OnlineExplorationOptimizer opt(h.engine.get(), options);
  h.Serve(&opt, 1000);
  ASSERT_TRUE(opt.budget_exhausted());
  const int explorations_at_exhaustion = opt.explorations();
  h.Serve(&opt, 500);
  EXPECT_EQ(opt.explorations(), explorations_at_exhaustion);
}

TEST(OnlineExplorerTest, ServedPlansConvergeTowardOptimal) {
  Harness h(5);
  OnlineExplorationOptions options;
  options.epsilon = 0.25;
  options.min_predicted_ratio = 0.05;
  options.regret_budget_seconds = 1e9;
  OnlineExplorationOptimizer opt(h.engine.get(), options);
  const double early = h.Serve(&opt, 300);
  for (int warm = 0; warm < 4; ++warm) h.Serve(&opt, 300);
  const double late = h.Serve(&opt, 300);
  // Same number of servings, strictly less total time after exploration.
  EXPECT_LT(late, 0.9 * early);
}

TEST(OnlineExplorerTest, MinRatioGateBlocksModelCandidates) {
  Harness h(6);
  OnlineExplorationOptions options;
  options.epsilon = 1.0;
  options.min_predicted_ratio = 1e9;  // nothing is ever promising enough
  options.random_fallback = false;    // and no bootstrap fallback either
  OnlineExplorationOptimizer opt(h.engine.get(), options);
  h.Serve(&opt, 200);
  EXPECT_EQ(opt.explorations(), 0);
}

TEST(OnlineExplorerTest, RandomFallbackBootstrapsFromColdStart) {
  Harness h(7);
  OnlineExplorationOptions options;
  options.epsilon = 1.0;
  options.min_predicted_ratio = 1e9;  // model candidates always rejected
  options.random_fallback = true;
  options.regret_budget_seconds = 1e9;
  OnlineExplorationOptimizer opt(h.engine.get(), options);
  h.Serve(&opt, 200);
  EXPECT_GT(opt.explorations(), 100);
}

/// The online analogue of the PR-1 completer determinism tests: a serving
/// trace is a pure function of (options.seed, serving stream). Two drivers
/// with the same seed must produce bitwise-identical traces even when the
/// completion model runs on different thread counts — the gate and
/// fallback-pick streams are forked independently from the seed, and the
/// threaded linalg core is thread-count-invariant by contract.
TEST(OnlineExplorerTest, TraceIsBitwiseIdenticalAcrossThreadCounts) {
  OnlineExplorationOptions options;
  options.epsilon = 0.3;
  options.min_predicted_ratio = 0.05;
  options.regret_budget_seconds = 50.0;
  options.seed = 12345;

  auto run_trace = [&](int threads, std::vector<int>* hints,
                       double* regret) {
    SetNumThreads(threads);
    Harness h(42);
    OnlineExplorationOptimizer opt(h.engine.get(), options);
    for (int s = 0; s < 800; ++s) {
      const int q = s % Harness::kQueries;
      const int hint = opt.ChooseHint(q);
      hints->push_back(hint);
      opt.ReportLatency(q, hint, h.truth(q, hint));
    }
    *regret = opt.regret_spent();
    EXPECT_EQ(opt.servings(), 800);
  };

  std::vector<int> hints_single, hints_multi;
  double regret_single = 0.0, regret_multi = 0.0;
  run_trace(1, &hints_single, &regret_single);
  run_trace(8, &hints_multi, &regret_multi);
  SetNumThreads(1);

  ASSERT_EQ(hints_single.size(), hints_multi.size());
  EXPECT_EQ(hints_single, hints_multi)
      << "online serving trace depends on the thread count";
  EXPECT_EQ(regret_single, regret_multi);
}

TEST(OnlineExplorerTest, SameSeedSameTraceDifferentSeedDifferentTrace) {
  auto run_trace = [](uint64_t seed) {
    Harness h(9);
    OnlineExplorationOptions options;
    options.epsilon = 0.4;
    options.regret_budget_seconds = 1e9;
    options.seed = seed;
    OnlineExplorationOptimizer opt(h.engine.get(), options);
    std::vector<int> hints;
    for (int s = 0; s < 400; ++s) {
      const int q = s % Harness::kQueries;
      const int hint = opt.ChooseHint(q);
      hints.push_back(hint);
      opt.ReportLatency(q, hint, h.truth(q, hint));
    }
    return hints;
  };
  EXPECT_EQ(run_trace(7), run_trace(7));
  EXPECT_NE(run_trace(7), run_trace(8));
}

TEST(OnlineExplorerTest, RiskGateTapersExplorationNearBudget) {
  Harness h(8);
  OnlineExplorationOptions options;
  options.epsilon = 1.0;
  options.min_predicted_ratio = 0.0;
  options.regret_budget_seconds = 10.0;
  options.max_baseline_budget_fraction = 0.125;
  OnlineExplorationOptimizer opt(h.engine.get(), options);
  h.Serve(&opt, 3000);
  // With the gate, a probe is only allowed when its baseline is <= 12.5%
  // of the remaining budget, and in this harness a probe's regret is at
  // most 1x its baseline (worst factor 2.0 vs baseline 1.0) — so the
  // budget can be overshot by at most one gated probe.
  EXPECT_LE(opt.regret_spent(), 10.0 * 1.125 + 1e-9);
  // Exploration tapered off rather than dying at once.
  EXPECT_GT(opt.explorations(), 3);
}

}  // namespace
}  // namespace limeqo::core
