#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace limeqo::linalg {
namespace {

bool ColumnsOrthonormal(const Matrix& m, double tol = 1e-8) {
  Matrix gram = m.Transposed() * m;
  return gram.ApproxEquals(Matrix::Identity(gram.rows()), tol);
}

TEST(SvdTest, DiagonalMatrixSingularValues) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 5}});
  SvdResult svd = ComputeSvd(a);
  ASSERT_EQ(svd.singular_values.size(), 2u);
  EXPECT_NEAR(svd.singular_values[0], 5.0, 1e-10);
  EXPECT_NEAR(svd.singular_values[1], 3.0, 1e-10);
}

TEST(SvdTest, ReconstructsTallMatrix) {
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(9, 4, &rng);
  SvdResult svd = ComputeSvd(a);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(a, 1e-8));
  EXPECT_TRUE(ColumnsOrthonormal(svd.u));
  EXPECT_TRUE(ColumnsOrthonormal(svd.v));
}

TEST(SvdTest, ReconstructsWideMatrix) {
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(3, 8, &rng);
  SvdResult svd = ComputeSvd(a);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(a, 1e-8));
}

TEST(SvdTest, SingularValuesSortedDescendingNonNegative) {
  Rng rng(3);
  Matrix a = Matrix::RandomGaussian(7, 5, &rng);
  std::vector<double> sv = SingularValues(a);
  for (size_t i = 0; i + 1 < sv.size(); ++i) EXPECT_GE(sv[i], sv[i + 1]);
  for (double s : sv) EXPECT_GE(s, 0.0);
}

TEST(SvdTest, FrobeniusNormMatchesSingularValues) {
  Rng rng(4);
  Matrix a = Matrix::RandomGaussian(6, 6, &rng);
  std::vector<double> sv = SingularValues(a);
  double ss = 0.0;
  for (double s : sv) ss += s * s;
  EXPECT_NEAR(std::sqrt(ss), a.FrobeniusNorm(), 1e-8);
}

TEST(SvdTest, LowRankMatrixHasLowNumericalRank) {
  Rng rng(5);
  Matrix u = Matrix::RandomGaussian(20, 3, &rng);
  Matrix v = Matrix::RandomGaussian(8, 3, &rng);
  Matrix a = u * v.Transposed();
  EXPECT_EQ(NumericalRank(a, 1e-8), 3u);
}

TEST(SvdTest, LowRankApproximationIsBest) {
  Rng rng(6);
  Matrix a = Matrix::RandomGaussian(10, 6, &rng);
  Matrix a2 = LowRankApproximation(a, 2);
  EXPECT_LE(NumericalRank(a2, 1e-8), 2u);
  // Eckart-Young: the residual equals the tail singular values' energy.
  std::vector<double> sv = SingularValues(a);
  double tail = 0.0;
  for (size_t i = 2; i < sv.size(); ++i) tail += sv[i] * sv[i];
  EXPECT_NEAR((a - a2).FrobeniusNorm(), std::sqrt(tail), 1e-7);
}

TEST(SvdTest, SoftThresholdShrinksSingularValues) {
  Rng rng(7);
  Matrix a = Matrix::RandomGaussian(8, 5, &rng);
  std::vector<double> before = SingularValues(a);
  const double tau = before[1];  // kills all but the top value
  Matrix shrunk = SvdSoftThreshold(a, tau);
  std::vector<double> after = SingularValues(shrunk);
  EXPECT_NEAR(after[0], before[0] - tau, 1e-7);
  for (size_t i = 1; i < after.size(); ++i) EXPECT_LT(after[i], 1e-7);
}

TEST(SvdTest, SoftThresholdZeroIsIdentity) {
  Rng rng(8);
  Matrix a = Matrix::RandomGaussian(5, 5, &rng);
  EXPECT_TRUE(SvdSoftThreshold(a, 0.0).ApproxEquals(a, 1e-8));
}

TEST(SvdTest, NuclearNormOfIdentity) {
  EXPECT_NEAR(NuclearNorm(Matrix::Identity(4)), 4.0, 1e-10);
}

/// Property sweep: reconstruction accuracy across random shapes.
struct SvdShape {
  size_t rows;
  size_t cols;
};

class SvdProperty : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdProperty, ReconstructionAndOrthogonality) {
  Rng rng(42 + GetParam().rows * 31 + GetParam().cols);
  Matrix a =
      Matrix::RandomGaussian(GetParam().rows, GetParam().cols, &rng);
  SvdResult svd = ComputeSvd(a);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(a, 1e-7));
  EXPECT_TRUE(ColumnsOrthonormal(svd.u, 1e-7));
  EXPECT_TRUE(ColumnsOrthonormal(svd.v, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdProperty,
                         ::testing::Values(SvdShape{1, 1}, SvdShape{1, 7},
                                           SvdShape{7, 1}, SvdShape{5, 5},
                                           SvdShape{12, 4}, SvdShape{4, 12},
                                           SvdShape{30, 10},
                                           SvdShape{10, 30}));

}  // namespace
}  // namespace limeqo::linalg
