// Sharded serving tier: N ExplorationEngine shards behind the deterministic
// router of src/core/shard_router.h. The pinning contract is differential:
// a 1-shard tier must serve a trace bitwise identical to the bare engine
// over the full scenario grid and every policy, K-shard tiers must satisfy
// every SimulationDriver invariant at 2 and 4 shards under 1/2/4 serving
// threads with a thread-count-independent merged trace, and per-shard
// checkpoints must reassemble into a fleet whose remaining trace equals the
// fleet that never died. Part of the CI ThreadSanitizer target
// (`ctest -R "...|shard_router_test"`).

#include <atomic>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/als.h"
#include "core/engine.h"
#include "core/predictor.h"
#include "core/shard_router.h"
#include "core/workload_matrix.h"
#include "scenarios/scenario.h"
#include "scenarios/simulation.h"
#include "scenarios/synthetic_backend.h"

namespace limeqo::scenarios {
namespace {

ScenarioSpec GridWorld(const std::string& name) {
  for (const ScenarioSpec& s : ScenarioGrid()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no grid world named " << name;
  return ScenarioSpec{};
}

SimulationResult RunSharded(const ScenarioSpec& spec, int shards, int threads,
                            PolicyKind policy = PolicyKind::kModelGuided,
                            bool free_running = false) {
  RunConfig config;
  config.policy = policy;
  config.serve_threads = threads;
  config.shards = shards;
  config.free_running = free_running;
  return SimulationDriver(spec).Run(config);
}

::testing::AssertionResult TracesIdentical(const SimulationResult& a,
                                           const SimulationResult& b) {
  if (a.serving_trace.size() != b.serving_trace.size()) {
    return ::testing::AssertionFailure()
           << "trace lengths " << a.serving_trace.size() << " vs "
           << b.serving_trace.size();
  }
  for (size_t s = 0; s < a.serving_trace.size(); ++s) {
    if (!(a.serving_trace[s] == b.serving_trace[s])) {
      return ::testing::AssertionFailure()
             << "serving " << s << " diverges: (" << a.serving_trace[s].query
             << "," << a.serving_trace[s].hint << ","
             << a.serving_trace[s].latency << ") vs ("
             << b.serving_trace[s].query << "," << b.serving_trace[s].hint
             << "," << b.serving_trace[s].latency << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// The headline differential: a 1-shard tier is the bare engine, bitwise —
// full grid, all three policies.
// ---------------------------------------------------------------------------

TEST(ShardEquivalenceTest, OneShardTierMatchesBareEngineBitwise) {
  for (const ScenarioSpec& spec : ScenarioGrid()) {
    for (PolicyKind policy :
         {PolicyKind::kRandom, PolicyKind::kGreedy, PolicyKind::kModelGuided}) {
      const SimulationResult bare = RunSharded(spec, /*shards=*/0,
                                               /*threads=*/1, policy);
      const SimulationResult tier = RunSharded(spec, /*shards=*/1,
                                               /*threads=*/1, policy);
      ASSERT_TRUE(bare.ok()) << "spec {" << Describe(spec) << "} policy "
                             << PolicyKindName(policy) << "\n"
                             << bare.Summary();
      ASSERT_TRUE(tier.ok()) << "spec {" << Describe(spec) << "} policy "
                             << PolicyKindName(policy) << "\n"
                             << tier.Summary();
      ASSERT_TRUE(TracesIdentical(bare, tier))
          << "spec {" << Describe(spec) << "} policy "
          << PolicyKindName(policy);
      EXPECT_EQ(bare.final_latency, tier.final_latency);
      EXPECT_EQ(bare.regret_spent, tier.regret_spent);
      EXPECT_EQ(bare.explorations, tier.explorations);
      EXPECT_EQ(bare.servings, tier.servings);
    }
  }
}

// ---------------------------------------------------------------------------
// K-shard tiers: the merged trace is independent of serving thread count,
// and every driver invariant holds at K in {2, 4} x threads in {1, 2, 4}.
// ---------------------------------------------------------------------------

class ShardedTraceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedTraceTest, MergedTraceIndependentOfThreadCount) {
  const ScenarioSpec spec = GridWorld(GetParam());
  for (int shards : {2, 4}) {
    const SimulationResult single = RunSharded(spec, shards, 1);
    ASSERT_TRUE(single.ok())
        << shards << " shards, 1 thread: " << single.Summary();
    ASSERT_EQ(static_cast<int>(single.serving_trace.size()),
              spec.online_servings);
    for (int threads : {2, 4}) {
      const SimulationResult multi = RunSharded(spec, shards, threads);
      ASSERT_TRUE(multi.ok())
          << shards << " shards, " << threads << " threads: "
          << multi.Summary();
      ASSERT_TRUE(TracesIdentical(single, multi))
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(single.final_latency, multi.final_latency);
      EXPECT_EQ(single.regret_spent, multi.regret_spent);
      EXPECT_EQ(single.explorations, multi.explorations);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, ShardedTraceTest,
    ::testing::Values("baseline", "noisy-observations", "heavy-tail-extreme",
                      "plan-equivalence", "online-tight-budget"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ShardedServingTest, GridInvariantsHoldAtTwoShards) {
  for (const ScenarioSpec& spec : ScenarioGrid()) {
    for (PolicyKind policy :
         {PolicyKind::kRandom, PolicyKind::kGreedy, PolicyKind::kModelGuided}) {
      const SimulationResult result = RunSharded(spec, 2, 2, policy);
      EXPECT_TRUE(result.ok())
          << "spec {" << Describe(spec) << "} policy "
          << PolicyKindName(policy) << " 2 shards\n"
          << result.Summary();
    }
  }
}

// ---------------------------------------------------------------------------
// Free-running fleet: per-shard train threads against serving threads that
// claim global batches. Traces are timing-dependent; the driver checks the
// per-shard statistical invariants plus the fleet compositions (summed
// slack, composed staleness bound, fleet freeze). TSan coverage target.
// ---------------------------------------------------------------------------

TEST(ShardedFreeRunningTest, InvariantsHoldAcrossShardAndThreadCounts) {
  const ScenarioSpec spec = GridWorld("baseline");
  for (int shards : {2, 4}) {
    for (int threads : {1, 2, 4}) {
      const SimulationResult result = RunSharded(
          spec, shards, threads, PolicyKind::kModelGuided,
          /*free_running=*/true);
      ASSERT_TRUE(result.ok()) << shards << " shards, " << threads
                               << " threads: " << result.Summary();
      EXPECT_EQ(result.servings, spec.online_servings);
      EXPECT_LE(result.staleness_p50, result.staleness_p95);
      EXPECT_LE(result.staleness_p95, result.staleness_max);
    }
  }
}

TEST(ShardedFreeRunningTest, TightBudgetFreezesEveryShard) {
  const ScenarioSpec spec = GridWorld("online-tight-budget");
  const SimulationResult result = RunSharded(
      spec, 2, 4, PolicyKind::kModelGuided, /*free_running=*/true);
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_GE(result.regret_slack, 0.0);
}

// ---------------------------------------------------------------------------
// Direct-tier tests: checkpoint reassembly and growth/rebalance, against a
// synthetic backend without the driver in between.
// ---------------------------------------------------------------------------

struct TierFixture {
  ScenarioSpec spec;
  std::unique_ptr<SyntheticBackend> backend;
  std::vector<std::unique_ptr<core::Predictor>> predictors;
  std::vector<core::Predictor*> predictor_ptrs;
  core::ShardedTierOptions options;
  std::unique_ptr<core::ShardedServingTier> tier;

  // `backend_rows` sizes the synthetic world (>= rows when the test will
  // append queries later); the tier starts from the first `rows` of it.
  TierFixture(int rows, int hints, int shards, uint64_t seed,
              int backend_rows = -1) {
    spec.name = "tier-fixture";
    spec.num_queries = backend_rows < 0 ? rows : backend_rows;
    spec.num_hints = hints;
    spec.latent_rank = 2;
    spec.noise_sigma = 0.1;
    spec.seed = seed;
    backend = std::make_unique<SyntheticBackend>(spec);
    core::WorkloadMatrix matrix(rows, hints);
    for (int q = 0; q < rows; ++q) {
      matrix.Observe(q, 0, backend->TrueLatency(q, 0));
    }
    MakePredictors(shards, seed);
    options.num_shards = shards;
    options.online.epsilon = 0.25;
    options.online.min_predicted_ratio = 0.05;
    options.online.regret_budget_seconds = 50.0;
    options.online.refresh_every = 8;
    options.online.publish_every = 4;
    options.online.seed = seed ^ 0x5EEDu;
    tier = std::make_unique<core::ShardedServingTier>(matrix, predictor_ptrs,
                                                      options);
    tier->RefreshAll(/*force=*/true);
    tier->PublishAll();
  }

  // A fresh, independent predictor set with the same configuration (the
  // restore path must not share fitted state with the dead fleet).
  void MakePredictors(int shards, uint64_t seed) {
    predictors.clear();
    predictor_ptrs.clear();
    for (int i = 0; i < shards; ++i) {
      core::AlsOptions als;
      als.rank = 2;
      als.iterations = 10;
      als.seed = seed ^ 0xA15u;
      predictors.push_back(std::make_unique<core::CompleterPredictor>(
          std::make_unique<core::AlsCompleter>(als)));
      predictor_ptrs.push_back(predictors.back().get());
    }
  }

  // Serves [begin, end) of the global schedule and appends to `trace`
  // (indexed by global seq - base).
  void Serve(core::ShardedServingTier& t, uint64_t begin, uint64_t end,
             int threads, uint64_t base, std::vector<ServingRecord>* trace) {
    t.ServeSchedule(
        begin, end, threads,
        [this](int q, int chosen, uint64_t seq) {
          core::ServedOutcome out;
          out.hint = chosen;
          out.latency = backend->ServeLatency(q, chosen, seq);
          return out;
        },
        [base, trace](uint64_t seq, int q, int hint, double latency) {
          (*trace)[seq - base] = ServingRecord{q, hint, latency};
        });
  }
};

::testing::AssertionResult MatricesIdentical(const core::WorkloadMatrix& a,
                                             const core::WorkloadMatrix& b) {
  if (a.num_queries() != b.num_queries() || a.num_hints() != b.num_hints()) {
    return ::testing::AssertionFailure()
           << "shape " << a.num_queries() << "x" << a.num_hints() << " vs "
           << b.num_queries() << "x" << b.num_hints();
  }
  for (int q = 0; q < a.num_queries(); ++q) {
    for (int j = 0; j < a.num_hints(); ++j) {
      if (a.values()(q, j) != b.values()(q, j) ||
          a.mask()(q, j) != b.mask()(q, j) ||
          a.timeouts()(q, j) != b.timeouts()(q, j) ||
          a.state(q, j) != b.state(q, j)) {
        return ::testing::AssertionFailure()
               << "cell (" << q << "," << j << ") differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

std::string UniqueTierDir(const char* tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "limeqo_tier_" + tag + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(TierCheckpointTest, RestoredFleetReplaysBitwiseAtEveryThreadCount) {
  TierFixture fx(/*rows=*/13, /*hints=*/5, /*shards=*/3, /*seed=*/77);
  const uint64_t kill = 64;
  const uint64_t total = 128;
  std::vector<ServingRecord> trace_a(total);
  fx.Serve(*fx.tier, 0, kill, /*threads=*/2, 0, &trace_a);

  const std::string dir = UniqueTierDir("kill_restore");
  const Status saved = fx.tier->SaveCheckpoints(dir);
  ASSERT_TRUE(saved.ok()) << saved.message();

  // The reference fleet lives on.
  fx.Serve(*fx.tier, kill, total, /*threads=*/2, 0, &trace_a);

  for (const int threads : {1, 2, 4}) {
    TierFixture twin(13, 5, 3, 77);  // fresh predictors, same configuration
    StatusOr<std::unique_ptr<core::ShardedServingTier>> restored =
        core::ShardedServingTier::RestoreFromDirectory(
            dir, twin.predictor_ptrs, twin.options);
    ASSERT_TRUE(restored.ok()) << restored.status().message();
    core::ShardedServingTier& b = **restored;
    ASSERT_EQ(b.scheduled_servings(), kill);
    ASSERT_EQ(b.num_shards(), 3);

    std::vector<ServingRecord> trace_b(total - kill);
    fx.Serve(b, kill, total, threads, kill, &trace_b);
    for (uint64_t s = kill; s < total; ++s) {
      ASSERT_TRUE(trace_a[s] == trace_b[s - kill])
          << "serving " << s << " diverges at " << threads << " threads";
    }
    EXPECT_TRUE(MatricesIdentical(fx.tier->MergedMatrix(), b.MergedMatrix()));
    EXPECT_EQ(fx.tier->regret_spent(), b.regret_spent());
    EXPECT_EQ(fx.tier->explorations(), b.explorations());
    // The per-row ledger slices came back through the tier manifest.
    for (int g = 0; g < b.num_queries(); ++g) {
      const auto& ea = fx.tier->shard_engine(fx.tier->ShardOfRow(g));
      const auto& eb = b.shard_engine(b.ShardOfRow(g));
      EXPECT_EQ(ea.row_regret(fx.tier->LocalRowOf(g)),
                eb.row_regret(b.LocalRowOf(g)))
          << "row " << g;
      EXPECT_EQ(ea.row_explorations(fx.tier->LocalRowOf(g)),
                eb.row_explorations(b.LocalRowOf(g)))
          << "row " << g;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(TierCheckpointTest, CorruptManifestIsRejected) {
  TierFixture fx(8, 4, 2, 5);
  std::vector<ServingRecord> trace(32);
  fx.Serve(*fx.tier, 0, 32, 1, 0, &trace);
  const std::string dir = UniqueTierDir("corrupt");
  ASSERT_TRUE(fx.tier->SaveCheckpoints(dir).ok());
  // Flip one byte in the manifest body; the CRC must catch it.
  const std::string path = dir + "/tier.manifest";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) - 2);
    f.put('#');
  }
  TierFixture twin(8, 4, 2, 5);
  StatusOr<std::unique_ptr<core::ShardedServingTier>> restored =
      core::ShardedServingTier::RestoreFromDirectory(dir, twin.predictor_ptrs,
                                                     twin.options);
  EXPECT_FALSE(restored.ok());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Growth and rebalancing smoke: AppendQueries routes new rows by the same
// hash, RebalanceHotShards converges to the advertised bound, and the
// fleet ledgers survive migration exactly.
// ---------------------------------------------------------------------------

TEST(TierGrowthTest, PartitionIsStableAndSeedPure) {
  for (int shards : {1, 2, 4, 7}) {
    for (int row = 0; row < 64; ++row) {
      const int a = core::ShardedServingTier::PartitionShard(0xABCu, row,
                                                             shards);
      const int b = core::ShardedServingTier::PartitionShard(0xABCu, row,
                                                             shards);
      ASSERT_EQ(a, b);
      ASSERT_GE(a, 0);
      ASSERT_LT(a, shards);
    }
  }
  // Different seeds really produce different partitions (not a constant).
  int diffs = 0;
  for (int row = 0; row < 64; ++row) {
    diffs += core::ShardedServingTier::PartitionShard(1, row, 4) !=
             core::ShardedServingTier::PartitionShard(2, row, 4);
  }
  EXPECT_GT(diffs, 0);
}

TEST(TierGrowthTest, AppendRoutesByHashAndServingContinues) {
  TierFixture fx(10, 4, 2, 11, /*backend_rows=*/14);
  std::vector<ServingRecord> trace(40);
  fx.Serve(*fx.tier, 0, 40, 2, 0, &trace);

  const int first = fx.tier->AppendQueries(4);
  EXPECT_EQ(first, 10);
  EXPECT_EQ(fx.tier->num_queries(), 14);
  int mapped = 0;
  for (int g = 10; g < 14; ++g) {
    const int shard = fx.tier->ShardOfRow(g);
    EXPECT_EQ(shard, core::ShardedServingTier::PartitionShard(
                         fx.options.partition_seed, g, 2));
    EXPECT_EQ(fx.tier->GlobalRowOf(shard, fx.tier->LocalRowOf(g)), g);
    ++mapped;
    // Bring the new row up the way the driver does: observe the default
    // hint so the serving plane has a verified cell.
    fx.tier->shard_engine(shard).Observe(fx.tier->LocalRowOf(g), 0,
                                         fx.backend->TrueLatency(g, 0));
  }
  EXPECT_EQ(mapped, 4);
  fx.tier->RefreshAll(true);
  fx.tier->PublishAll();

  std::vector<ServingRecord> more(42);
  fx.Serve(*fx.tier, 40, 82, 2, 40, &more);
  for (const ServingRecord& rec : more) {
    EXPECT_GE(rec.query, 0);
    EXPECT_LT(rec.query, 14);
  }
  // Budget slices re-split proportionally and still sum to the fleet
  // budget.
  double sum = 0.0;
  for (int i = 0; i < 2; ++i) sum += fx.tier->shard_budget(i);
  EXPECT_NEAR(sum, fx.options.online.regret_budget_seconds, 1e-9);
}

TEST(TierGrowthTest, RebalancePreservesLedgersAndConvergesToBound) {
  TierFixture fx(12, 4, 3, 23);
  std::vector<ServingRecord> trace(96);
  fx.Serve(*fx.tier, 0, 96, 2, 0, &trace);

  // Pile every row of shard 1 and 2 onto shard 0 to manufacture a hot
  // shard, then let the rebalancer spread it back out.
  for (int g = 0; g < fx.tier->num_queries(); ++g) {
    if (fx.tier->ShardOfRow(g) != 0) fx.tier->MigrateRow(g, 0);
  }
  ASSERT_EQ(fx.tier->ShardRowCount(0), 12);
  const double regret_before = fx.tier->regret_spent();
  const int explorations_before = fx.tier->explorations();

  const int moved = fx.tier->RebalanceHotShards();
  EXPECT_GT(moved, 0);
  const double bound =
      fx.options.rebalance_factor * (12.0 / 3.0);
  EXPECT_LE(fx.tier->ShardRowCount(0), static_cast<int>(bound) + 1);
  // Migration moves ledger slices; the fleet totals must not drift beyond
  // float re-association noise, and exploration counts are integers.
  EXPECT_NEAR(fx.tier->regret_spent(), regret_before, 1e-9);
  EXPECT_EQ(fx.tier->explorations(), explorations_before);

  // Router maps stay a bijection and serving continues.
  for (int g = 0; g < fx.tier->num_queries(); ++g) {
    const int shard = fx.tier->ShardOfRow(g);
    ASSERT_EQ(fx.tier->GlobalRowOf(shard, fx.tier->LocalRowOf(g)), g);
  }
  std::vector<ServingRecord> more(24);
  fx.Serve(*fx.tier, 96, 120, 2, 96, &more);
  for (const ServingRecord& rec : more) {
    EXPECT_GE(rec.hint, 0);
    EXPECT_LT(rec.hint, 4);
  }
}

}  // namespace
}  // namespace limeqo::scenarios
