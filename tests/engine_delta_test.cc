// Delta snapshot publication must be bitwise-equivalent to full rebuilds
// at every publication point. Twin engines — one publishing base+delta
// overlays, one forced to full O(n*k) rebuilds — run identical operation
// sequences (observations, censoring, clears, queue reports, refits,
// appends, matrix resets) and their snapshots are compared field by field
// and decision by decision after every Publish. On top of the unit
// property, whole scenario-grid runs through the epoch-synchronized
// concurrent driver must produce bitwise-identical serving traces with
// delta publication on and off.

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/als.h"
#include "core/engine.h"
#include "core/online.h"
#include "proptest.h"
#include "scenarios/scenario.h"
#include "scenarios/simulation.h"

namespace limeqo::core {
namespace {

WorkloadMatrix RandomMatrix(int n, int k, double fill, uint64_t seed) {
  WorkloadMatrix w(n, k);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    w.Observe(i, 0, rng.Uniform(0.1, 10.0));
    for (int j = 1; j < k; ++j) {
      if (rng.Bernoulli(fill)) w.Observe(i, j, rng.Uniform(0.01, 10.0));
    }
  }
  return w;
}

/// Field-by-field and decision-by-decision snapshot comparison. Returns
/// false (with a diagnostic on stderr) at the first divergence.
bool SnapshotsEquivalent(const ServingSnapshot& delta,
                         const ServingSnapshot& full) {
  if (delta.num_queries() != full.num_queries() ||
      delta.num_hints() != full.num_hints() ||
      delta.published_seq() != full.published_seq() ||
      delta.regret_spent() != full.regret_spent() ||
      delta.budget_exhausted() != full.budget_exhausted() ||
      delta.has_predictions() != full.has_predictions()) {
    std::cerr << "snapshot headers diverge: n " << delta.num_queries() << "/"
              << full.num_queries() << " k " << delta.num_hints() << "/"
              << full.num_hints() << " seq " << delta.published_seq() << "/"
              << full.published_seq() << " regret " << delta.regret_spent()
              << "/" << full.regret_spent() << " preds "
              << delta.has_predictions() << "/" << full.has_predictions()
              << "\n";
    return false;
  }
  const int n = delta.num_queries();
  const int k = delta.num_hints();
  for (int q = 0; q < n; ++q) {
    if (delta.VerifiedHint(q) != full.VerifiedHint(q)) {
      std::cerr << "verified hint diverges at query " << q << ": "
                << delta.VerifiedHint(q) << " vs " << full.VerifiedHint(q)
                << "\n";
      return false;
    }
    // Bitwise: both +infinity and finite latencies must match exactly.
    const double dl = delta.VerifiedLatency(q);
    const double fl = full.VerifiedLatency(q);
    if (!(dl == fl || (std::isinf(dl) && std::isinf(fl)))) {
      std::cerr << "verified latency diverges at query " << q << ": " << dl
                << " vs " << fl << "\n";
      return false;
    }
    for (int j = 0; j < k; ++j) {
      if (delta.state(q, j) != full.state(q, j)) {
        std::cerr << "cell state diverges at (" << q << "," << j << ")\n";
        return false;
      }
    }
  }
  // Behavioral equivalence: the serving decision for any (query, index)
  // pair must coincide — this exercises the epsilon gate, the frozen
  // ledger, the prediction scan, and the fallback pick together.
  for (uint64_t s = 0; s < 64; ++s) {
    const int q = static_cast<int>(s % static_cast<uint64_t>(n));
    if (delta.ChooseHint(q, s) != full.ChooseHint(q, s)) {
      std::cerr << "ChooseHint diverges at (query " << q << ", serving " << s
                << ")\n";
      return false;
    }
  }
  return true;
}

/// The twin-engine operation-sequence property: after every Publish, the
/// delta engine's snapshot must be indistinguishable from the full
/// engine's, and both must agree with the OnlineOptimizer rule recomputed
/// from the live matrix.
bool DeltaMatchesFullOverRandomOps(proptest::Params& p) {
  const int n = static_cast<int>(p.Int(3, 24));
  const int k = static_cast<int>(p.Int(2, 8));
  const double fill = p.Double(0.05, 0.5);

  EngineOptions delta_opt;
  delta_opt.online.epsilon = 0.5;
  delta_opt.online.min_predicted_ratio = 0.0;
  delta_opt.online.regret_budget_seconds = 50.0;
  delta_opt.online.seed = p.case_seed() ^ 0x5EEDu;
  delta_opt.delta_publication = true;
  EngineOptions full_opt = delta_opt;
  full_opt.delta_publication = false;

  AlsOptions als;
  als.seed = p.case_seed() ^ 0xA15u;
  als.convergence_tol = 1e-3;
  CompleterPredictor delta_predictor(std::make_unique<AlsCompleter>(als));
  CompleterPredictor full_predictor(std::make_unique<AlsCompleter>(als));

  WorkloadMatrix seed_matrix = RandomMatrix(n, k, fill, p.case_seed());
  ExplorationEngine delta_engine(seed_matrix, &delta_predictor, delta_opt);
  ExplorationEngine full_engine(std::move(seed_matrix), &full_predictor,
                                full_opt);

  Rng ops(p.case_seed() ^ 0x09Au);
  uint64_t seq = 0;
  int rows = n;
  for (int step = 0; step < 50; ++step) {
    const int q = static_cast<int>(ops.NextUint64Below(rows));
    const int j = static_cast<int>(ops.NextUint64Below(k));
    switch (ops.NextUint64Below(9)) {
      case 0:
      case 1: {  // direct train-plane observation
        const double latency = ops.Uniform(0.01, 10.0);
        delta_engine.Observe(q, j, latency);
        full_engine.Observe(q, j, latency);
        break;
      }
      case 2: {  // censored observation
        const double timeout = ops.Uniform(0.01, 5.0);
        delta_engine.ObserveCensored(q, j, timeout);
        full_engine.ObserveCensored(q, j, timeout);
        break;
      }
      case 3:  // forget (data-shift invalidation)
        delta_engine.Clear(q, j);
        full_engine.Clear(q, j);
        break;
      case 4: {  // a batch of queue reports, drained in order
        const int batch = 1 + static_cast<int>(ops.NextUint64Below(6));
        for (int b = 0; b < batch; ++b) {
          const int bq = static_cast<int>(ops.NextUint64Below(rows));
          const int bj = static_cast<int>(ops.NextUint64Below(k));
          const double latency = ops.Uniform(0.01, 10.0);
          const ServingObservation da =
              delta_engine.snapshot()->MakeObservation(seq, bq, bj, latency);
          const ServingObservation fa =
              full_engine.snapshot()->MakeObservation(seq, bq, bj, latency);
          if (da.exploratory != fa.exploratory ||
              da.regret_delta != fa.regret_delta) {
            std::cerr << "MakeObservation diverges at seq " << seq << "\n";
            return false;
          }
          delta_engine.Report(da);
          full_engine.Report(fa);
          ++seq;
        }
        delta_engine.Drain();
        full_engine.Drain();
        break;
      }
      case 5: {  // refit (the delta engine's full-rebuild trigger)
        const bool da = delta_engine.RefreshPredictions(/*force=*/true);
        const bool fa = full_engine.RefreshPredictions(/*force=*/true);
        if (da != fa) {
          std::cerr << "RefreshPredictions diverges: " << da << " vs " << fa
                    << "\n";
          return false;
        }
        break;
      }
      case 6: {  // workload shift: new rows join
        const int count = 1 + static_cast<int>(ops.NextUint64Below(2));
        delta_engine.AppendQueries(count);
        full_engine.AppendQueries(count);
        rows += count;
        break;
      }
      case 7: {  // wholesale replacement (resume-from-disk)
        WorkloadMatrix fresh =
            RandomMatrix(rows, k, fill, p.case_seed() ^ (0xF00Du + step));
        delta_engine.ResetMatrix(fresh);
        full_engine.ResetMatrix(std::move(fresh));
        break;
      }
      default:
        break;  // publish-only step
    }
    delta_engine.Publish();
    full_engine.Publish();
    std::shared_ptr<const ServingSnapshot> ds = delta_engine.snapshot();
    std::shared_ptr<const ServingSnapshot> fs = full_engine.snapshot();
    if (!SnapshotsEquivalent(*ds, *fs)) {
      std::cerr << "divergence after step " << step << " (rows " << rows
                << ", k " << k << ")\n";
      return false;
    }
    // Both must match the rule recomputed from the live matrix — the
    // "identical verified-best semantics" contract shared with the
    // synchronous OnlineExplorationOptimizer adapter.
    const OnlineOptimizer rule(&delta_engine.matrix());
    for (int query = 0; query < rows; ++query) {
      if (ds->VerifiedHint(query) != rule.ChooseHint(query)) {
        std::cerr << "snapshot verified hint diverges from the live rule at "
                  << "query " << query << " (step " << step << ")\n";
        return false;
      }
    }
  }
  return true;
}

TEST(EngineDeltaTest, DeltaPublicationIsBitwiseEquivalentToFullRebuild) {
  proptest::Config config;
  config.runs = 12;
  proptest::Check("delta snapshots match full rebuilds over random ops",
                  DeltaMatchesFullOverRandomOps, config);
}

TEST(EngineDeltaTest, DeltaSnapshotsShareTheBaseAndStayImmutable) {
  // Defaults-only fill: every non-default cell starts unobserved.
  ExplorationEngine engine(RandomMatrix(16, 6, 0.0, 41));
  std::shared_ptr<const ServingSnapshot> base_snap = engine.snapshot();
  EXPECT_EQ(base_snap->delta_rows(), 0);  // construction publishes a base

  engine.Observe(3, 2, 0.123);
  engine.Publish();
  std::shared_ptr<const ServingSnapshot> first = engine.snapshot();
  EXPECT_EQ(first->delta_rows(), 1);  // only the touched row rides the delta
  EXPECT_EQ(first->state(3, 2), CellState::kComplete);
  // The retained earlier snapshots are untouched by later publications.
  EXPECT_EQ(base_snap->state(3, 2), CellState::kUnobserved);

  engine.Observe(7, 1, 0.456);
  engine.Publish();
  std::shared_ptr<const ServingSnapshot> second = engine.snapshot();
  EXPECT_EQ(second->delta_rows(), 2);  // overlay accumulates until rebuild
  EXPECT_EQ(first->state(7, 1), CellState::kUnobserved);
  EXPECT_EQ(second->state(7, 1), CellState::kComplete);

  // AppendQueries forces the next publication back to a full base.
  engine.AppendQueries(2);
  engine.Publish();
  std::shared_ptr<const ServingSnapshot> rebuilt = engine.snapshot();
  EXPECT_EQ(rebuilt->delta_rows(), 0);
  EXPECT_EQ(rebuilt->num_queries(), 18);
  EXPECT_EQ(rebuilt->state(7, 1), CellState::kComplete);
  // Older snapshots keep their pre-append shape.
  EXPECT_EQ(second->num_queries(), 16);
}

TEST(EngineDeltaTest, OverlayCompactionBoundsTheDeltaSize) {
  // Touching more than a quarter of the rows without a refit must fold the
  // overlay back into a fresh base instead of growing it without bound.
  ExplorationEngine engine(RandomMatrix(16, 4, 0.0, 42));
  for (int q = 0; q < 12; ++q) {
    engine.Observe(q, 1, 1.0 + q);
  }
  engine.Publish();
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  EXPECT_EQ(snap->delta_rows(), 0) << "12 dirty rows of 16 must compact";
  for (int q = 0; q < 12; ++q) {
    EXPECT_EQ(snap->state(q, 1), CellState::kComplete);
  }
}

}  // namespace
}  // namespace limeqo::core

namespace limeqo::scenarios {
namespace {

ScenarioSpec GridWorld(const std::string& name) {
  for (const ScenarioSpec& s : ScenarioGrid()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no grid world named " << name;
  return ScenarioSpec{};
}

// The end-to-end form of the equivalence: every publication point of a
// whole epoch-synchronized concurrent run drives real serving decisions,
// so bitwise-equal traces with delta publication on and off prove the
// protocol equivalent at each of those points.
TEST(EngineDeltaTest, GridTracesIdenticalWithAndWithoutDeltaPublication) {
  for (const std::string& name :
       {std::string("baseline"), std::string("heavy-tail-extreme"),
        std::string("online-tight-budget")}) {
    const ScenarioSpec spec = GridWorld(name);
    RunConfig delta_config;
    delta_config.serve_threads = 2;
    RunConfig full_config = delta_config;
    full_config.full_snapshot_rebuild = true;

    const SimulationResult delta_run = SimulationDriver(spec).Run(delta_config);
    const SimulationResult full_run = SimulationDriver(spec).Run(full_config);
    ASSERT_TRUE(delta_run.ok()) << delta_run.Summary();
    ASSERT_TRUE(full_run.ok()) << full_run.Summary();
    ASSERT_EQ(delta_run.serving_trace.size(), full_run.serving_trace.size())
        << name;
    for (size_t s = 0; s < delta_run.serving_trace.size(); ++s) {
      ASSERT_TRUE(delta_run.serving_trace[s] == full_run.serving_trace[s])
          << name << " serving " << s << " diverges: ("
          << delta_run.serving_trace[s].query << ","
          << delta_run.serving_trace[s].hint << ","
          << delta_run.serving_trace[s].latency << ") vs ("
          << full_run.serving_trace[s].query << ","
          << full_run.serving_trace[s].hint << ","
          << full_run.serving_trace[s].latency << ")";
    }
    EXPECT_EQ(delta_run.final_latency, full_run.final_latency) << name;
    EXPECT_EQ(delta_run.regret_spent, full_run.regret_spent) << name;
    EXPECT_EQ(delta_run.explorations, full_run.explorations) << name;
  }
}

}  // namespace
}  // namespace limeqo::scenarios
