#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/serialization.h"
#include "proptest.h"

namespace limeqo::core {
namespace {

WorkloadMatrix MakeMixedMatrix(int n, int k, uint64_t seed) {
  WorkloadMatrix w(n, k);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      const double roll = rng.NextDouble();
      if (roll < 0.3) {
        w.Observe(i, j, rng.LogNormal(0.0, 1.7));
      } else if (roll < 0.45) {
        w.ObserveCensored(i, j, rng.LogNormal(0.5, 1.0));
      }
    }
  }
  return w;
}

TEST(SerializationTest, RoundTripPreservesEveryCell) {
  WorkloadMatrix w = MakeMixedMatrix(37, 11, 5);
  std::stringstream ss;
  ASSERT_TRUE(SaveWorkloadMatrix(w, ss).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_queries(), 37);
  ASSERT_EQ(loaded->num_hints(), 11);
  for (int i = 0; i < 37; ++i) {
    for (int j = 0; j < 11; ++j) {
      EXPECT_EQ(loaded->state(i, j), w.state(i, j)) << i << "," << j;
      if (w.state(i, j) != CellState::kUnobserved) {
        // Bit-exact round trip (max_digits10 precision).
        EXPECT_DOUBLE_EQ(loaded->observed(i, j), w.observed(i, j));
      }
    }
  }
}

TEST(SerializationTest, EmptyMatrixRoundTrips) {
  WorkloadMatrix w(3, 4);
  std::stringstream ss;
  ASSERT_TRUE(SaveWorkloadMatrix(w, ss).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumComplete(), 0);
  EXPECT_EQ(loaded->NumCensored(), 0);
  EXPECT_EQ(loaded->NumUnobserved(), 12);
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream ss("not-a-matrix v1 2 2\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsUnknownVersion) {
  std::stringstream ss("limeqo-workload-matrix v99 2 2\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsBadShape) {
  std::stringstream ss("limeqo-workload-matrix v1 0 5\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsOutOfRangeCell) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 5 0 1.0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsNegativeLatency) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 0 0 -3.5\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsUnknownTag) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "Q 0 0 1.0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsTruncatedRecord) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 0 0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsEmptyStream) {
  std::stringstream ss;
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, FileRoundTrip) {
  WorkloadMatrix w = MakeMixedMatrix(5, 7, 9);
  const std::string path = ::testing::TempDir() + "/limeqo_matrix.txt";
  ASSERT_TRUE(SaveWorkloadMatrixToFile(w, path).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrixFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumComplete(), w.NumComplete());
  EXPECT_EQ(loaded->NumCensored(), w.NumCensored());
}

/// Property: any reachable WorkloadMatrix state — censored cells, zero
/// latencies, denormals, huge magnitudes — survives save -> load -> save
/// with byte-identical output and cell-exact state. Catches both precision
/// loss (not enough digits) and format drift (load/save disagreeing).
TEST(SerializationTest, RandomMatrixStatesRoundTripByteIdentically) {
  proptest::Check(
      "save -> load -> save is byte-identical",
      [](proptest::Params& p) {
        const int n = static_cast<int>(p.Int(1, 60));
        const int k = static_cast<int>(p.Int(1, 16));
        WorkloadMatrix w(n, k);
        Rng value_rng(p.case_seed() ^ 0x53455231ULL);
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < k; ++j) {
            const int64_t roll = p.Int(0, 9);
            if (roll < 4) continue;  // unobserved
            // Magnitudes spanning denormals to near-overflow, plus exact
            // edge values; every one must survive the text round trip.
            double value;
            switch (roll) {
              case 4:
                value = 0.0;  // legal complete observation
                break;
              case 5:
                value = std::numeric_limits<double>::denorm_min();
                break;
              case 6:
                value = std::numeric_limits<double>::max();
                break;
              default:
                value = std::exp(value_rng.Uniform(-280.0, 280.0));
                break;
            }
            if (p.Bool(0.3) && value > 0.0) {
              w.ObserveCensored(i, j, value);
            } else {
              w.Observe(i, j, value);
            }
          }
        }

        std::stringstream first;
        if (!SaveWorkloadMatrix(w, first).ok()) return false;
        StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(first);
        if (!loaded.ok()) {
          std::cerr << "load failed: " << loaded.status() << "\n";
          return false;
        }
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < k; ++j) {
            if (loaded->state(i, j) != w.state(i, j)) {
              std::cerr << "state mismatch at (" << i << "," << j << ")\n";
              return false;
            }
            if (w.state(i, j) != CellState::kUnobserved &&
                loaded->observed(i, j) != w.observed(i, j)) {
              std::cerr << "value mismatch at (" << i << "," << j << "): "
                        << w.observed(i, j) << " vs "
                        << loaded->observed(i, j) << "\n";
              return false;
            }
          }
        }
        std::stringstream second;
        if (!SaveWorkloadMatrix(*loaded, second).ok()) return false;
        if (first.str() != second.str()) {
          std::cerr << "save -> load -> save not byte-identical\n";
          return false;
        }
        return true;
      });
}

TEST(SerializationTest, FileErrorsSurfaceAsStatus) {
  EXPECT_FALSE(
      LoadWorkloadMatrixFromFile("/nonexistent/dir/matrix.txt").ok());
  WorkloadMatrix w(2, 2);
  EXPECT_FALSE(
      SaveWorkloadMatrixToFile(w, "/nonexistent/dir/matrix.txt").ok());
}

// The legacy v1 format (no length prefix, no CRC) must keep loading: it is
// what pre-checkpoint deployments wrote to disk.
TEST(SerializationTest, LegacyV1FormatStillLoads) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 3 2\n"
      "C 0 0 1.25\n"
      "X 2 1 0.5\n");
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->state(0, 0), CellState::kComplete);
  EXPECT_EQ(loaded->observed(0, 0), 1.25);
  EXPECT_EQ(loaded->state(2, 1), CellState::kCensored);
  EXPECT_EQ(loaded->NumUnobserved(), 4);
}

// ---------------------------------------------------------------------------
// Corruption fuzz: no damaged v2 record — matrix or engine checkpoint —
// may ever load silently. A flipped byte changes the payload (CRC
// mismatch) or the header (magic / version / length / CRC field rejected);
// a truncation falls short of the length prefix. Every case must surface
// as a Status, never as a quietly wrong object.
// ---------------------------------------------------------------------------

EngineCheckpoint FuzzCheckpoint(proptest::Params& p) {
  EngineCheckpoint c;
  c.matrix = MakeMixedMatrix(static_cast<int>(p.Int(0, 20)),
                             static_cast<int>(p.Int(1, 8)),
                             static_cast<uint64_t>(p.Int(1, 1 << 30)));
  const int rank = static_cast<int>(p.Int(0, 3));
  if (rank > 0 && c.matrix.num_queries() > 0) {
    c.factors.query_factors =
        linalg::Matrix(c.matrix.num_queries(), rank, 0.25);
    c.factors.hint_factors = linalg::Matrix(c.matrix.num_hints(), rank, -1.5);
  }
  if (p.Bool(0.5) && c.matrix.num_queries() > 0) {
    c.predictions =
        linalg::Matrix(c.matrix.num_queries(), c.matrix.num_hints(), 0.75);
    c.have_predictions = true;
  }
  c.regret_spent = p.Double(0.0, 100.0);
  c.explorations = static_cast<int>(p.Int(0, 1000));
  c.serving_seq = static_cast<uint64_t>(p.Int(0, 1 << 20));
  c.updates_since_refresh = static_cast<int>(p.Int(0, 64));
  c.snapshot_version = static_cast<uint64_t>(p.Int(0, 1 << 20));
  return c;
}

TEST(CorruptionFuzzTest, DamagedMatrixRecordsNeverLoadSilently) {
  proptest::Config config;
  config.runs = 40;
  proptest::Check(
      "corrupted v2 matrix records are rejected",
      [](proptest::Params& p) {
        const WorkloadMatrix w =
            MakeMixedMatrix(static_cast<int>(p.Int(1, 30)),
                            static_cast<int>(p.Int(1, 10)),
                            static_cast<uint64_t>(p.Int(1, 1 << 30)));
        std::stringstream ss;
        if (!SaveWorkloadMatrix(w, ss).ok()) return false;
        std::string bytes = ss.str();
        if (p.Bool(0.5)) {
          // Truncation: any proper prefix must be rejected.
          bytes = bytes.substr(
              0, static_cast<size_t>(
                     p.Int(0, static_cast<int64_t>(bytes.size()) - 1)));
        } else {
          // Single-byte flip anywhere in the record.
          const size_t pos = static_cast<size_t>(
              p.Int(0, static_cast<int64_t>(bytes.size()) - 1));
          bytes[pos] ^= static_cast<char>(p.Int(1, 255));
        }
        std::stringstream damaged(bytes);
        if (LoadWorkloadMatrix(damaged).ok()) {
          std::cerr << "damaged matrix record loaded silently\n";
          return false;
        }
        return true;
      },
      config);
}

TEST(CorruptionFuzzTest, DamagedCheckpointsNeverLoadSilently) {
  proptest::Config config;
  config.runs = 40;
  proptest::Check(
      "corrupted engine checkpoints are rejected",
      [](proptest::Params& p) {
        const EngineCheckpoint c = FuzzCheckpoint(p);
        std::stringstream ss;
        if (!SaveEngineCheckpoint(c, ss).ok()) return false;
        std::string bytes = ss.str();
        if (p.Bool(0.5)) {
          bytes = bytes.substr(
              0, static_cast<size_t>(
                     p.Int(0, static_cast<int64_t>(bytes.size()) - 1)));
        } else {
          const size_t pos = static_cast<size_t>(
              p.Int(0, static_cast<int64_t>(bytes.size()) - 1));
          bytes[pos] ^= static_cast<char>(p.Int(1, 255));
        }
        std::stringstream damaged(bytes);
        if (LoadEngineCheckpoint(damaged).ok()) {
          std::cerr << "damaged checkpoint loaded silently\n";
          return false;
        }
        return true;
      },
      config);
}

TEST(CheckpointHeaderTest, RejectsBadMagicVersionAndCrc) {
  EngineCheckpoint c;
  c.matrix = MakeMixedMatrix(4, 3, 11);
  c.regret_spent = 1.5;
  std::stringstream ss;
  ASSERT_TRUE(SaveEngineCheckpoint(c, ss).ok());
  const std::string good = ss.str();

  {
    std::string bad = good;
    bad.replace(0, 6, "notck-");
    std::stringstream in(bad);
    EXPECT_FALSE(LoadEngineCheckpoint(in).ok());
  }
  {
    std::string bad = good;
    const size_t v = bad.find("v1");
    ASSERT_NE(v, std::string::npos);
    bad.replace(v, 2, "v9");
    std::stringstream in(bad);
    EXPECT_FALSE(LoadEngineCheckpoint(in).ok());
  }
  {
    // Flip one payload character without touching the header: only the
    // CRC can catch this.
    std::string bad = good;
    const size_t header_end = bad.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    bad[header_end + 1] ^= 0x01;
    std::stringstream in(bad);
    const StatusOr<EngineCheckpoint> loaded = LoadEngineCheckpoint(in);
    EXPECT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
        << loaded.status().message();
  }
  // And the untouched record still loads + round-trips byte-identically.
  std::stringstream in(good);
  StatusOr<EngineCheckpoint> loaded = LoadEngineCheckpoint(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::stringstream again;
  ASSERT_TRUE(SaveEngineCheckpoint(*loaded, again).ok());
  EXPECT_EQ(good, again.str());
}

}  // namespace
}  // namespace limeqo::core
