#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/serialization.h"

namespace limeqo::core {
namespace {

WorkloadMatrix MakeMixedMatrix(int n, int k, uint64_t seed) {
  WorkloadMatrix w(n, k);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      const double roll = rng.NextDouble();
      if (roll < 0.3) {
        w.Observe(i, j, rng.LogNormal(0.0, 1.7));
      } else if (roll < 0.45) {
        w.ObserveCensored(i, j, rng.LogNormal(0.5, 1.0));
      }
    }
  }
  return w;
}

TEST(SerializationTest, RoundTripPreservesEveryCell) {
  WorkloadMatrix w = MakeMixedMatrix(37, 11, 5);
  std::stringstream ss;
  ASSERT_TRUE(SaveWorkloadMatrix(w, ss).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_queries(), 37);
  ASSERT_EQ(loaded->num_hints(), 11);
  for (int i = 0; i < 37; ++i) {
    for (int j = 0; j < 11; ++j) {
      EXPECT_EQ(loaded->state(i, j), w.state(i, j)) << i << "," << j;
      if (w.state(i, j) != CellState::kUnobserved) {
        // Bit-exact round trip (max_digits10 precision).
        EXPECT_DOUBLE_EQ(loaded->observed(i, j), w.observed(i, j));
      }
    }
  }
}

TEST(SerializationTest, EmptyMatrixRoundTrips) {
  WorkloadMatrix w(3, 4);
  std::stringstream ss;
  ASSERT_TRUE(SaveWorkloadMatrix(w, ss).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumComplete(), 0);
  EXPECT_EQ(loaded->NumCensored(), 0);
  EXPECT_EQ(loaded->NumUnobserved(), 12);
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream ss("not-a-matrix v1 2 2\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsUnknownVersion) {
  std::stringstream ss("limeqo-workload-matrix v99 2 2\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsBadShape) {
  std::stringstream ss("limeqo-workload-matrix v1 0 5\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsOutOfRangeCell) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 5 0 1.0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsNegativeLatency) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 0 0 -3.5\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsUnknownTag) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "Q 0 0 1.0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsTruncatedRecord) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 0 0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsEmptyStream) {
  std::stringstream ss;
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, FileRoundTrip) {
  WorkloadMatrix w = MakeMixedMatrix(5, 7, 9);
  const std::string path = ::testing::TempDir() + "/limeqo_matrix.txt";
  ASSERT_TRUE(SaveWorkloadMatrixToFile(w, path).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrixFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumComplete(), w.NumComplete());
  EXPECT_EQ(loaded->NumCensored(), w.NumCensored());
}

TEST(SerializationTest, FileErrorsSurfaceAsStatus) {
  EXPECT_FALSE(
      LoadWorkloadMatrixFromFile("/nonexistent/dir/matrix.txt").ok());
  WorkloadMatrix w(2, 2);
  EXPECT_FALSE(
      SaveWorkloadMatrixToFile(w, "/nonexistent/dir/matrix.txt").ok());
}

}  // namespace
}  // namespace limeqo::core
