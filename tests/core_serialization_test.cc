#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/serialization.h"
#include "proptest.h"

namespace limeqo::core {
namespace {

WorkloadMatrix MakeMixedMatrix(int n, int k, uint64_t seed) {
  WorkloadMatrix w(n, k);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      const double roll = rng.NextDouble();
      if (roll < 0.3) {
        w.Observe(i, j, rng.LogNormal(0.0, 1.7));
      } else if (roll < 0.45) {
        w.ObserveCensored(i, j, rng.LogNormal(0.5, 1.0));
      }
    }
  }
  return w;
}

TEST(SerializationTest, RoundTripPreservesEveryCell) {
  WorkloadMatrix w = MakeMixedMatrix(37, 11, 5);
  std::stringstream ss;
  ASSERT_TRUE(SaveWorkloadMatrix(w, ss).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_queries(), 37);
  ASSERT_EQ(loaded->num_hints(), 11);
  for (int i = 0; i < 37; ++i) {
    for (int j = 0; j < 11; ++j) {
      EXPECT_EQ(loaded->state(i, j), w.state(i, j)) << i << "," << j;
      if (w.state(i, j) != CellState::kUnobserved) {
        // Bit-exact round trip (max_digits10 precision).
        EXPECT_DOUBLE_EQ(loaded->observed(i, j), w.observed(i, j));
      }
    }
  }
}

TEST(SerializationTest, EmptyMatrixRoundTrips) {
  WorkloadMatrix w(3, 4);
  std::stringstream ss;
  ASSERT_TRUE(SaveWorkloadMatrix(w, ss).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumComplete(), 0);
  EXPECT_EQ(loaded->NumCensored(), 0);
  EXPECT_EQ(loaded->NumUnobserved(), 12);
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream ss("not-a-matrix v1 2 2\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsUnknownVersion) {
  std::stringstream ss("limeqo-workload-matrix v99 2 2\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsBadShape) {
  std::stringstream ss("limeqo-workload-matrix v1 0 5\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsOutOfRangeCell) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 5 0 1.0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsNegativeLatency) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 0 0 -3.5\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsUnknownTag) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "Q 0 0 1.0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsTruncatedRecord) {
  std::stringstream ss(
      "limeqo-workload-matrix v1 2 2\n"
      "C 0 0\n");
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, RejectsEmptyStream) {
  std::stringstream ss;
  EXPECT_FALSE(LoadWorkloadMatrix(ss).ok());
}

TEST(SerializationTest, FileRoundTrip) {
  WorkloadMatrix w = MakeMixedMatrix(5, 7, 9);
  const std::string path = ::testing::TempDir() + "/limeqo_matrix.txt";
  ASSERT_TRUE(SaveWorkloadMatrixToFile(w, path).ok());
  StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrixFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumComplete(), w.NumComplete());
  EXPECT_EQ(loaded->NumCensored(), w.NumCensored());
}

/// Property: any reachable WorkloadMatrix state — censored cells, zero
/// latencies, denormals, huge magnitudes — survives save -> load -> save
/// with byte-identical output and cell-exact state. Catches both precision
/// loss (not enough digits) and format drift (load/save disagreeing).
TEST(SerializationTest, RandomMatrixStatesRoundTripByteIdentically) {
  proptest::Check(
      "save -> load -> save is byte-identical",
      [](proptest::Params& p) {
        const int n = static_cast<int>(p.Int(1, 60));
        const int k = static_cast<int>(p.Int(1, 16));
        WorkloadMatrix w(n, k);
        Rng value_rng(p.case_seed() ^ 0x53455231ULL);
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < k; ++j) {
            const int64_t roll = p.Int(0, 9);
            if (roll < 4) continue;  // unobserved
            // Magnitudes spanning denormals to near-overflow, plus exact
            // edge values; every one must survive the text round trip.
            double value;
            switch (roll) {
              case 4:
                value = 0.0;  // legal complete observation
                break;
              case 5:
                value = std::numeric_limits<double>::denorm_min();
                break;
              case 6:
                value = std::numeric_limits<double>::max();
                break;
              default:
                value = std::exp(value_rng.Uniform(-280.0, 280.0));
                break;
            }
            if (p.Bool(0.3) && value > 0.0) {
              w.ObserveCensored(i, j, value);
            } else {
              w.Observe(i, j, value);
            }
          }
        }

        std::stringstream first;
        if (!SaveWorkloadMatrix(w, first).ok()) return false;
        StatusOr<WorkloadMatrix> loaded = LoadWorkloadMatrix(first);
        if (!loaded.ok()) {
          std::cerr << "load failed: " << loaded.status() << "\n";
          return false;
        }
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < k; ++j) {
            if (loaded->state(i, j) != w.state(i, j)) {
              std::cerr << "state mismatch at (" << i << "," << j << ")\n";
              return false;
            }
            if (w.state(i, j) != CellState::kUnobserved &&
                loaded->observed(i, j) != w.observed(i, j)) {
              std::cerr << "value mismatch at (" << i << "," << j << "): "
                        << w.observed(i, j) << " vs "
                        << loaded->observed(i, j) << "\n";
              return false;
            }
          }
        }
        std::stringstream second;
        if (!SaveWorkloadMatrix(*loaded, second).ok()) return false;
        if (first.str() != second.str()) {
          std::cerr << "save -> load -> save not byte-identical\n";
          return false;
        }
        return true;
      });
}

TEST(SerializationTest, FileErrorsSurfaceAsStatus) {
  EXPECT_FALSE(
      LoadWorkloadMatrixFromFile("/nonexistent/dir/matrix.txt").ok());
  WorkloadMatrix w(2, 2);
  EXPECT_FALSE(
      SaveWorkloadMatrixToFile(w, "/nonexistent/dir/matrix.txt").ok());
}

}  // namespace
}  // namespace limeqo::core
