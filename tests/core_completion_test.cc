#include <cmath>

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/als.h"
#include "core/nuclear_norm.h"
#include "core/svt.h"
#include "linalg/svd.h"

namespace limeqo::core {
namespace {

/// Builds a random non-negative rank-r ground truth and a WorkloadMatrix
/// with a fraction p of entries observed.
struct PlantedProblem {
  linalg::Matrix truth;
  WorkloadMatrix observed;
};

PlantedProblem MakePlanted(int n, int k, int rank, double p, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix q = linalg::Matrix::Random(n, rank, &rng, 0.1, 1.0);
  linalg::Matrix h = linalg::Matrix::Random(k, rank, &rng, 0.1, 1.0);
  PlantedProblem prob{q * h.Transposed(), WorkloadMatrix(n, k)};
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      if (rng.Bernoulli(p)) prob.observed.Observe(i, j, prob.truth(i, j));
    }
  }
  // Guarantee at least one observation.
  prob.observed.Observe(0, 0, prob.truth(0, 0));
  return prob;
}

double UnobservedRmse(const PlantedProblem& prob, const linalg::Matrix& est) {
  double se = 0.0;
  int count = 0;
  for (int i = 0; i < prob.observed.num_queries(); ++i) {
    for (int j = 0; j < prob.observed.num_hints(); ++j) {
      if (!prob.observed.IsComplete(i, j)) {
        const double d = est(i, j) - prob.truth(i, j);
        se += d * d;
        ++count;
      }
    }
  }
  return std::sqrt(se / std::max(count, 1));
}

double TruthScale(const PlantedProblem& prob) {
  return prob.truth.FrobeniusNorm() /
         std::sqrt(static_cast<double>(prob.truth.size()));
}

/// The threaded linalg core must not make completion results depend on the
/// thread count: LIMEQO_THREADS=1 and LIMEQO_THREADS=8 (here pinned via
/// SetNumThreads) have to produce bitwise-identical output.
TEST(AlsTest, CompleteIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(77);
  PlantedProblem prob = MakePlanted(120, 40, 4, 0.15, 7);
  // Mix in censored observations so the clamp path runs threaded too.
  for (int i = 0; i < prob.observed.num_queries(); ++i) {
    for (int j = 0; j < prob.observed.num_hints(); ++j) {
      if (prob.observed.IsUnobserved(i, j) && rng.Bernoulli(0.05)) {
        prob.observed.ObserveCensored(i, j, prob.truth(i, j) * 0.5);
      }
    }
  }
  for (FitSpace space : {FitSpace::kLogRatio, FitSpace::kRaw}) {
    AlsOptions opt;
    opt.rank = 4;
    opt.fit_space = space;
    SetNumThreads(1);
    AlsCompleter als_single(opt);
    StatusOr<linalg::Matrix> single = als_single.Complete(prob.observed);
    ASSERT_TRUE(single.ok());
    SetNumThreads(8);
    AlsCompleter als_multi(opt);
    StatusOr<linalg::Matrix> multi = als_multi.Complete(prob.observed);
    ASSERT_TRUE(multi.ok());
    SetNumThreads(1);
    ASSERT_EQ(single->size(), multi->size());
    EXPECT_EQ(std::memcmp(single->data(), multi->data(),
                          single->size() * sizeof(double)),
              0)
        << "ALS output depends on the thread count (fit_space="
        << static_cast<int>(space) << ")";
  }
}

TEST(SvtTest, CompleteIsBitwiseIdenticalAcrossThreadCounts) {
  PlantedProblem prob = MakePlanted(80, 30, 3, 0.3, 9);
  SetNumThreads(1);
  SvtCompleter svt_single;
  StatusOr<linalg::Matrix> single = svt_single.Complete(prob.observed);
  ASSERT_TRUE(single.ok());
  SetNumThreads(8);
  SvtCompleter svt_multi;
  StatusOr<linalg::Matrix> multi = svt_multi.Complete(prob.observed);
  ASSERT_TRUE(multi.ok());
  SetNumThreads(1);
  ASSERT_EQ(single->size(), multi->size());
  EXPECT_EQ(std::memcmp(single->data(), multi->data(),
                        single->size() * sizeof(double)),
            0)
      << "SVT output depends on the thread count";
}

TEST(AlsTest, RecoversPlantedLowRankMatrix) {
  PlantedProblem prob = MakePlanted(60, 30, 3, 0.5, 1);
  AlsOptions opt;
  opt.rank = 3;
  AlsCompleter als(opt);
  StatusOr<linalg::Matrix> est = als.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(UnobservedRmse(prob, *est), 0.1 * TruthScale(prob));
}

TEST(AlsTest, ObservedEntriesPassThrough) {
  PlantedProblem prob = MakePlanted(20, 10, 2, 0.4, 2);
  AlsCompleter als;
  StatusOr<linalg::Matrix> est = als.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (prob.observed.IsComplete(i, j)) {
        EXPECT_DOUBLE_EQ((*est)(i, j), prob.truth(i, j));
      }
    }
  }
}

TEST(AlsTest, FactorsAreNonNegativeInRawSpace) {
  PlantedProblem prob = MakePlanted(30, 15, 3, 0.5, 3);
  AlsOptions opt;
  opt.fit_space = FitSpace::kRaw;  // Algorithm 2 verbatim
  AlsCompleter als(opt);
  ASSERT_TRUE(als.Complete(prob.observed).ok());
  EXPECT_GE(als.query_factors().data()[0], -1e-12);
  for (size_t i = 0; i < als.query_factors().size(); ++i) {
    EXPECT_GE(als.query_factors().data()[i], 0.0);
  }
  for (size_t i = 0; i < als.hint_factors().size(); ++i) {
    EXPECT_GE(als.hint_factors().data()[i], 0.0);
  }
}

TEST(AlsTest, PredictionsAreNonNegativeUnderNonNegOption) {
  PlantedProblem prob = MakePlanted(30, 15, 3, 0.3, 4);
  AlsCompleter als;
  StatusOr<linalg::Matrix> est = als.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  for (size_t i = 0; i < est->size(); ++i) {
    EXPECT_GE(est->data()[i], 0.0);
  }
}

TEST(AlsTest, ErrorsWithoutObservations) {
  WorkloadMatrix w(5, 5);
  AlsCompleter als;
  EXPECT_FALSE(als.Complete(w).ok());
}

TEST(AlsTest, CensoredClampRaisesPredictions) {
  // A cell censored at a threshold far above the low-rank prediction must
  // be predicted at or near the threshold by the censored mode, while the
  // ignore mode stays near the (too low) low-rank value.
  PlantedProblem prob = MakePlanted(40, 20, 2, 0.6, 5);
  const double huge = 50.0 * TruthScale(prob);
  prob.observed.Clear(3, 4);  // ensure the cell is not already complete
  prob.observed.ObserveCensored(3, 4, huge);

  AlsOptions censored_opt;
  censored_opt.censored_mode = CensoredMode::kCensored;
  AlsCompleter censored(censored_opt);
  StatusOr<linalg::Matrix> est_c = censored.Complete(prob.observed);
  ASSERT_TRUE(est_c.ok());

  AlsOptions ignore_opt;
  ignore_opt.censored_mode = CensoredMode::kIgnore;
  AlsCompleter ignore(ignore_opt);
  StatusOr<linalg::Matrix> est_i = ignore.Complete(prob.observed);
  ASSERT_TRUE(est_i.ok());

  EXPECT_GT((*est_c)(3, 4), (*est_i)(3, 4));
}

TEST(AlsTest, NaiveObservedTreatsTimeoutAsTruth) {
  PlantedProblem prob = MakePlanted(30, 15, 2, 0.6, 6);
  prob.observed.Clear(2, 2);
  prob.observed.ObserveCensored(2, 2, 7.0);
  AlsOptions opt;
  opt.censored_mode = CensoredMode::kNaiveObserved;
  AlsCompleter als(opt);
  StatusOr<linalg::Matrix> est = als.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  // Naive mode passes the timeout through as an observed value.
  EXPECT_DOUBLE_EQ((*est)(2, 2), 7.0);
}

TEST(AlsTest, LogRatioRecoversScaleHeterogeneousMatrix) {
  // Rows spanning orders of magnitude: raw-space least squares is dominated
  // by the largest rows, the log-ratio space is scale-free.
  Rng rng(31);
  PlantedProblem prob = MakePlanted(60, 30, 3, 0.4, 31);
  for (int i = 0; i < 60; ++i) {
    const double scale = std::exp(rng.Gaussian(0.0, 2.0));
    for (int j = 0; j < 30; ++j) {
      prob.truth(i, j) *= scale;
      if (prob.observed.IsComplete(i, j)) {
        prob.observed.Clear(i, j);
        prob.observed.Observe(i, j, prob.truth(i, j));
      }
    }
  }
  AlsOptions opt;
  opt.fit_space = FitSpace::kLogRatio;
  AlsCompleter als(opt);
  StatusOr<linalg::Matrix> est = als.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  // Scale-free accuracy metric: mean relative error on unobserved cells.
  double rel = 0.0;
  int count = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = 0; j < 30; ++j) {
      if (!prob.observed.IsComplete(i, j)) {
        rel += std::abs((*est)(i, j) - prob.truth(i, j)) / prob.truth(i, j);
        ++count;
      }
    }
  }
  EXPECT_LT(rel / count, 0.25);
}

TEST(AlsTest, LogRatioPredictionsArePositive) {
  PlantedProblem prob = MakePlanted(30, 15, 3, 0.3, 32);
  AlsOptions opt;
  opt.fit_space = FitSpace::kLogRatio;
  AlsCompleter als(opt);
  StatusOr<linalg::Matrix> est = als.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  for (size_t i = 0; i < est->size(); ++i) {
    EXPECT_GT(est->data()[i], 0.0);
  }
}

TEST(SvtTest, RecoversDensePlantedMatrix) {
  PlantedProblem prob = MakePlanted(40, 25, 3, 0.6, 7);
  SvtCompleter svt;
  StatusOr<linalg::Matrix> est = svt.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(UnobservedRmse(prob, *est), 0.35 * TruthScale(prob));
}

TEST(SvtTest, ErrorsWithoutObservations) {
  WorkloadMatrix w(5, 5);
  SvtCompleter svt;
  EXPECT_FALSE(svt.Complete(w).ok());
}

TEST(NuclearNormTest, RecoversPlantedMatrix) {
  PlantedProblem prob = MakePlanted(40, 25, 3, 0.4, 8);
  NuclearNormCompleter nuc;
  StatusOr<linalg::Matrix> est = nuc.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(UnobservedRmse(prob, *est), 0.3 * TruthScale(prob));
}

TEST(NuclearNormTest, ErrorsWithoutObservations) {
  WorkloadMatrix w(4, 4);
  NuclearNormCompleter nuc;
  EXPECT_FALSE(nuc.Complete(w).ok());
}

/// Sweep: ALS accuracy across ranks and observation densities. The paper's
/// choice r = 5 should be robust for true rank <= 5 (Sec. 5.5.3).
struct AlsSweepParam {
  int true_rank;
  double density;
};

class AlsSweep : public ::testing::TestWithParam<AlsSweepParam> {};

TEST_P(AlsSweep, RecoversAcrossConfigurations) {
  PlantedProblem prob = MakePlanted(
      80, 40, GetParam().true_rank, GetParam().density,
      1000 + GetParam().true_rank * 17 +
          static_cast<uint64_t>(GetParam().density * 100));
  AlsOptions opt;
  opt.rank = 5;  // paper default
  // The sparsest configurations need more alternations to reach a good
  // iterate; validation-based early stopping keeps the best one.
  opt.iterations = 200;
  AlsCompleter als(opt);
  StatusOr<linalg::Matrix> est = als.Complete(prob.observed);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(UnobservedRmse(prob, *est), 0.25 * TruthScale(prob))
      << "true_rank=" << GetParam().true_rank
      << " density=" << GetParam().density;
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndDensities, AlsSweep,
    ::testing::Values(AlsSweepParam{1, 0.2}, AlsSweepParam{2, 0.3},
                      AlsSweepParam{3, 0.3}, AlsSweepParam{4, 0.4},
                      AlsSweepParam{5, 0.5}, AlsSweepParam{2, 0.15},
                      AlsSweepParam{3, 0.6}));

TEST(AlsTest, LogRatioTransfersColumnQualityToUnseenRows) {
  // The collaborative-filtering property that drives early exploration:
  // when hint column 3 is observed to halve latency on SOME rows, the
  // model should predict that hint 3 beats the default on rows where only
  // the default has been observed.
  const int n = 60, k = 10;
  Rng rng(77);
  WorkloadMatrix w(n, k);
  std::vector<double> defaults(n);
  for (int i = 0; i < n; ++i) {
    defaults[i] = rng.LogNormal(0.0, 1.5);
    w.Observe(i, 0, defaults[i]);
  }
  // Hint 3 observed on the first 20 rows only, always ~0.5x the default.
  for (int i = 0; i < 20; ++i) {
    w.Observe(i, 3, 0.5 * defaults[i] * rng.Uniform(0.9, 1.1));
  }
  AlsCompleter als;  // default options: log-ratio fit space
  StatusOr<linalg::Matrix> est = als.Complete(w);
  ASSERT_TRUE(est.ok());
  int predicted_faster = 0;
  for (int i = 20; i < n; ++i) {
    if ((*est)(i, 3) < defaults[i]) ++predicted_faster;
  }
  EXPECT_GE(predicted_faster, (n - 20) * 9 / 10);
}

TEST(AlsTest, EarlyStoppingHarmlessOnConstantRowMatrices) {
  // A matrix where every observed cell of a row carries the same value
  // (the all-defaults start state) must not be degraded by the validation
  // split: constant rows are excluded from validation by design.
  const int n = 30, k = 8;
  Rng rng(78);
  WorkloadMatrix w(n, k);
  for (int i = 0; i < n; ++i) {
    const double d = rng.LogNormal(0.0, 1.0);
    w.Observe(i, 0, d);
    w.Observe(i, 1, d);  // same plan-equivalence class as the default
  }
  AlsOptions opt;
  opt.early_stopping = true;
  AlsCompleter als(opt);
  StatusOr<linalg::Matrix> est = als.Complete(w);
  ASSERT_TRUE(est.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ((*est)(i, 0), w.observed(i, 0));
    EXPECT_DOUBLE_EQ((*est)(i, 1), w.observed(i, 1));
  }
}

/// Invariant sweep across every (censored mode, fit space) combination:
/// whatever the configuration, Complete() must pass observed values
/// through, produce positive finite predictions, and respect censoring
/// floors in kCensored mode.
struct ModeSpaceParam {
  CensoredMode mode;
  FitSpace space;
};

class AlsModeSpaceSweep : public ::testing::TestWithParam<ModeSpaceParam> {};

TEST_P(AlsModeSpaceSweep, CoreInvariantsHold) {
  PlantedProblem prob = MakePlanted(40, 20, 3, 0.35, 91);
  // Add a censored cell with a high threshold.
  prob.observed.Clear(5, 7);
  const double threshold = 20.0 * TruthScale(prob);
  prob.observed.ObserveCensored(5, 7, threshold);

  AlsOptions opt;
  opt.censored_mode = GetParam().mode;
  opt.fit_space = GetParam().space;
  AlsCompleter als(opt);
  StatusOr<linalg::Matrix> est = als.Complete(prob.observed);
  ASSERT_TRUE(est.ok());

  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 20; ++j) {
      const double v = (*est)(i, j);
      EXPECT_TRUE(std::isfinite(v)) << i << "," << j;
      if (prob.observed.IsComplete(i, j)) {
        EXPECT_DOUBLE_EQ(v, prob.truth(i, j));
      }
    }
  }
  if (GetParam().mode == CensoredMode::kCensored) {
    // The censored technique never predicts below the threshold.
    EXPECT_GE((*est)(5, 7), threshold * (1.0 - 1e-9));
  }
  if (GetParam().mode == CensoredMode::kNaiveObserved) {
    EXPECT_DOUBLE_EQ((*est)(5, 7), threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSpaces, AlsModeSpaceSweep,
    ::testing::Values(
        ModeSpaceParam{CensoredMode::kCensored, FitSpace::kRaw},
        ModeSpaceParam{CensoredMode::kCensored, FitSpace::kLogRatio},
        ModeSpaceParam{CensoredMode::kNaiveObserved, FitSpace::kRaw},
        ModeSpaceParam{CensoredMode::kNaiveObserved, FitSpace::kLogRatio},
        ModeSpaceParam{CensoredMode::kIgnore, FitSpace::kRaw},
        ModeSpaceParam{CensoredMode::kIgnore, FitSpace::kLogRatio}));

/// Low-rank diagnostics: a planted workload matrix has concentrated
/// singular values, a random one does not (Fig. 14's premise).
TEST(LowRankDiagnostics, PlantedVsRandomSpectra) {
  Rng rng(99);
  PlantedProblem prob = MakePlanted(100, 49, 5, 1.0, 9);
  std::vector<double> planted_sv = linalg::SingularValues(prob.truth);
  linalg::Matrix random =
      linalg::Matrix::Random(100, 49, &rng, 0.0, 1.0);
  std::vector<double> random_sv = linalg::SingularValues(random);

  auto top5_energy = [](const std::vector<double>& sv) {
    double top = 0.0, total = 0.0;
    for (size_t i = 0; i < sv.size(); ++i) {
      total += sv[i] * sv[i];
      if (i < 5) top += sv[i] * sv[i];
    }
    return top / total;
  };
  EXPECT_GT(top5_energy(planted_sv), 0.999);
  EXPECT_LT(top5_energy(random_sv), 0.9);
}

}  // namespace
}  // namespace limeqo::core
