#ifndef LIMEQO_TESTS_PROPTEST_H_
#define LIMEQO_TESTS_PROPTEST_H_

/// A minimal seeded property-testing harness (quickcheck-style) for the
/// test suite. Design goals, in order:
///
///  1. *Reproducibility*: every generated case derives from one 64-bit
///     seed. A failure prints `LIMEQO_PROPTEST_SEED=<seed>`; exporting that
///     variable re-runs exactly the failing case.
///  2. *Shrinking*: after a failure the harness re-runs the property with
///     individual drawn values pushed toward their lower bounds (bounded by
///     Config::max_shrink_attempts) and reports the smallest still-failing
///     assignment.
///  3. *No framework magic*: a property is a callable `bool(Params&)` that
///     returns false on violation. Properties should signal failure through
///     the return value — not gtest macros — so that shrink re-runs stay
///     silent; print diagnostics to stderr when returning false instead.
///
/// Usage:
///
///   proptest::Check("matrix round-trips", [](proptest::Params& p) {
///     const int n = p.Int(1, 50);
///     const double x = p.Double(0.0, 1e6);
///     ...
///     return condition_held;
///   });

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace limeqo::proptest {

struct Config {
  /// Generated cases per Check call (LIMEQO_PROPTEST_RUNS overrides).
  int runs = 25;
  /// Master seed; per-case seeds derive from it. LIMEQO_PROPTEST_SEED
  /// replays a single case instead.
  uint64_t seed = 0x11320DD5CA1EULL;
  /// Total property re-runs the shrinker may spend.
  int max_shrink_attempts = 150;
  bool shrink = true;
};

/// The value source handed to a property. Draws are uniform, recorded, and
/// individually overridable — the override mechanism always consumes the
/// underlying random stream too, so overriding draw i never desynchronizes
/// draws i+1... (the standard record-and-replay shrinking trick).
class Params {
 public:
  explicit Params(uint64_t case_seed,
                  std::vector<std::optional<double>> overrides = {})
      : case_seed_(case_seed),
        rng_(case_seed),
        overrides_(std::move(overrides)) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    const double raw = static_cast<double>(rng_.UniformInt(lo, hi));
    return static_cast<int64_t>(Record(/*is_int=*/true,
                                       static_cast<double>(lo),
                                       static_cast<double>(hi), raw));
  }

  /// Uniform double in [lo, hi).
  double Double(double lo, double hi) {
    return Record(/*is_int=*/false, lo, hi, rng_.Uniform(lo, hi));
  }

  /// True with probability p. Shrinks toward false.
  bool Bool(double p = 0.5) {
    const double raw = rng_.Bernoulli(p) ? 1.0 : 0.0;
    return Record(/*is_int=*/true, 0.0, 1.0, raw) != 0.0;
  }

  uint64_t case_seed() const { return case_seed_; }

  // --- Harness internals --------------------------------------------------
  struct Draw {
    bool is_int = false;
    double lo = 0.0;
    double hi = 0.0;
    double value = 0.0;
  };
  const std::vector<Draw>& draws() const { return draws_; }

 private:
  double Record(bool is_int, double lo, double hi, double raw) {
    const size_t index = draws_.size();
    double value = raw;
    if (index < overrides_.size() && overrides_[index].has_value()) {
      value = *overrides_[index];
      if (value < lo) value = lo;
      if (value > hi) value = hi;
      if (is_int) value = static_cast<double>(static_cast<int64_t>(value));
    }
    draws_.push_back(Draw{is_int, lo, hi, value});
    return value;
  }

  uint64_t case_seed_;
  Rng rng_;
  std::vector<std::optional<double>> overrides_;
  std::vector<Draw> draws_;
};

using Property = std::function<bool(Params&)>;

namespace internal {

inline std::string FormatDraws(const std::vector<Params::Draw>& draws) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < draws.size(); ++i) {
    if (i > 0) os << ", ";
    if (draws[i].is_int) {
      os << static_cast<int64_t>(draws[i].value);
    } else {
      os << draws[i].value;
    }
  }
  os << "]";
  return os.str();
}

/// Re-runs `prop` on (case_seed, overrides); true when it still FAILS.
inline bool StillFails(const Property& prop, uint64_t case_seed,
                       const std::vector<std::optional<double>>& overrides,
                       std::vector<Params::Draw>* draws_out) {
  Params params(case_seed, overrides);
  const bool held = prop(params);
  if (draws_out != nullptr) *draws_out = params.draws();
  return !held;
}

/// Greedy bounded shrink: walk the recorded draws, repeatedly trying the
/// lower bound and then the midpoint toward it, keeping any substitution
/// under which the property still fails. Overriding a draw replays the
/// whole property, so control-flow changes (fewer/more draws) are handled
/// naturally.
inline std::vector<Params::Draw> Shrink(const Property& prop,
                                        uint64_t case_seed,
                                        std::vector<Params::Draw> failing,
                                        int max_attempts) {
  std::vector<std::optional<double>> committed(failing.size());
  int attempts = 0;
  bool improved = true;
  while (improved && attempts < max_attempts) {
    improved = false;
    for (size_t i = 0; i < failing.size() && attempts < max_attempts; ++i) {
      const Params::Draw current = failing[i];
      const double candidates[2] = {
          current.lo,
          current.is_int
              ? std::floor((current.lo + current.value) / 2.0)
              : (current.lo + current.value) / 2.0,
      };
      for (double candidate : candidates) {
        if (attempts >= max_attempts) break;
        if (candidate == current.value) continue;
        const std::optional<double> previous =
            i < committed.size() ? committed[i] : std::nullopt;
        if (i >= committed.size()) committed.resize(i + 1);
        committed[i] = candidate;
        ++attempts;
        std::vector<Params::Draw> draws;
        if (StillFails(prop, case_seed, committed, &draws)) {
          failing = std::move(draws);
          committed.resize(failing.size());
          improved = true;
          break;  // re-evaluate this index against its new value
        }
        committed[i] = previous;
      }
    }
  }
  return failing;
}

}  // namespace internal

/// Runs `prop` against Config::runs generated cases (or the single case
/// named by LIMEQO_PROPTEST_SEED). On failure, shrinks and reports the
/// reproducing seed plus the smallest failing draw assignment via
/// ADD_FAILURE, so the surrounding gtest test fails with a replayable
/// message.
inline void Check(const std::string& name, const Property& prop,
                  Config config = {}) {
  std::vector<uint64_t> case_seeds;
  if (const char* env = std::getenv("LIMEQO_PROPTEST_SEED")) {
    case_seeds.push_back(std::strtoull(env, nullptr, 0));
  } else {
    if (const char* env_runs = std::getenv("LIMEQO_PROPTEST_RUNS")) {
      const long runs = std::strtol(env_runs, nullptr, 0);
      if (runs > 0) config.runs = static_cast<int>(runs);
    }
    Rng master(config.seed);
    for (int r = 0; r < config.runs; ++r) {
      case_seeds.push_back(master.NextUint64());
    }
  }

  for (uint64_t case_seed : case_seeds) {
    Params params(case_seed);
    if (prop(params)) continue;
    std::vector<Params::Draw> smallest = params.draws();
    if (config.shrink) {
      smallest = internal::Shrink(prop, case_seed, std::move(smallest),
                                  config.max_shrink_attempts);
    }
    ADD_FAILURE() << "property \"" << name << "\" failed; reproduce with "
                  << "LIMEQO_PROPTEST_SEED=" << case_seed
                  << "\n  shrunk draws: "
                  << internal::FormatDraws(smallest);
    return;  // one counterexample per Check is enough
  }
}

}  // namespace limeqo::proptest

#endif  // LIMEQO_TESTS_PROPTEST_H_
