#include <gtest/gtest.h>

#include "workloads/workloads.h"

namespace limeqo::workloads {
namespace {

TEST(WorkloadSpecTest, TableOneValues) {
  const WorkloadSpec& job = GetSpec(WorkloadId::kJob);
  EXPECT_EQ(job.num_queries, 113);
  EXPECT_DOUBLE_EQ(job.default_total_seconds, 181.0);
  EXPECT_DOUBLE_EQ(job.optimal_total_seconds, 68.0);

  const WorkloadSpec& ceb = GetSpec(WorkloadId::kCeb);
  EXPECT_EQ(ceb.num_queries, 3133);
  EXPECT_NEAR(ceb.default_total_seconds / 3600.0, 2.94, 1e-9);

  const WorkloadSpec& stack = GetSpec(WorkloadId::kStack);
  EXPECT_EQ(stack.num_queries, 6191);

  const WorkloadSpec& dsb = GetSpec(WorkloadId::kDsb);
  EXPECT_EQ(dsb.num_queries, 1040);
  EXPECT_NEAR(dsb.optimal_total_seconds / 3600.0, 2.74, 1e-9);
}

TEST(WorkloadSpecTest, EveryWorkloadHasHeadroom) {
  for (const WorkloadSpec& spec : AllWorkloadSpecs()) {
    const double headroom =
        spec.default_total_seconds / spec.optimal_total_seconds;
    EXPECT_GT(headroom, 1.2) << spec.name;
    EXPECT_LT(headroom, 3.0) << spec.name;
  }
}

TEST(MakeWorkloadTest, JobCalibration) {
  StatusOr<simdb::SimulatedDatabase> db = MakeWorkload(WorkloadId::kJob);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_queries(), 113);
  EXPECT_NEAR(db->DefaultTotal(), 181.0, 1.0);
  EXPECT_NEAR(db->OptimalTotal(), 68.0, 1.0);
}

TEST(MakeWorkloadTest, ScaleSubsamplesProportionally) {
  StatusOr<simdb::SimulatedDatabase> db =
      MakeWorkload(WorkloadId::kCeb, 0.05);
  ASSERT_TRUE(db.ok());
  const WorkloadSpec& spec = GetSpec(WorkloadId::kCeb);
  const double frac =
      static_cast<double>(db->num_queries()) / spec.num_queries;
  EXPECT_NEAR(frac, 0.05, 0.01);
  EXPECT_NEAR(db->DefaultTotal(), spec.default_total_seconds * frac, 2.0);
  EXPECT_NEAR(db->OptimalTotal(), spec.optimal_total_seconds * frac, 4.0);
}

TEST(MakeWorkloadTest, RejectsBadScale) {
  EXPECT_FALSE(MakeWorkload(WorkloadId::kJob, 0.0).ok());
  EXPECT_FALSE(MakeWorkload(WorkloadId::kJob, 1.5).ok());
}

TEST(MakeWorkloadTest, StackHasEtlRows) {
  StatusOr<simdb::SimulatedDatabase> db =
      MakeWorkload(WorkloadId::kStack, 0.05);
  ASSERT_TRUE(db.ok());
  int etl = 0;
  for (int i = 0; i < db->num_queries(); ++i) etl += db->IsEtl(i);
  EXPECT_GT(etl, 0);
}

TEST(Fig10Test, DriftIntervalsAreMonotone) {
  const auto& intervals = Fig10DriftIntervals();
  ASSERT_EQ(intervals.size(), 8u);
  for (size_t i = 0; i + 1 < intervals.size(); ++i) {
    EXPECT_LT(intervals[i].severity, intervals[i + 1].severity);
    EXPECT_LE(intervals[i].paper_changed_percent,
              intervals[i + 1].paper_changed_percent);
  }
}

/// Calibration sweep over all four Table 1 workloads at reduced scale.
class CalibrationSweep : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(CalibrationSweep, TargetsHit) {
  const WorkloadSpec& spec = GetSpec(GetParam());
  const double scale = spec.num_queries > 500 ? 0.1 : 1.0;
  StatusOr<simdb::SimulatedDatabase> db = MakeWorkload(GetParam(), scale);
  ASSERT_TRUE(db.ok());
  const double frac =
      static_cast<double>(db->num_queries()) / spec.num_queries;
  EXPECT_NEAR(db->DefaultTotal() / (spec.default_total_seconds * frac), 1.0,
              0.01);
  EXPECT_NEAR(db->OptimalTotal() / (spec.optimal_total_seconds * frac), 1.0,
              0.03);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CalibrationSweep,
                         ::testing::Values(WorkloadId::kJob, WorkloadId::kCeb,
                                           WorkloadId::kStack,
                                           WorkloadId::kDsb,
                                           WorkloadId::kStack2017));

/// Cross-scale calibration sweep: headroom (Default/Optimal) must be
/// preserved by subsampling at every scale, for every workload.
struct ScaleParam {
  WorkloadId id;
  double scale;
};

class ScaleSweep : public ::testing::TestWithParam<ScaleParam> {};

TEST_P(ScaleSweep, HeadroomPreservedUnderSubsampling) {
  const WorkloadSpec& spec = GetSpec(GetParam().id);
  StatusOr<simdb::SimulatedDatabase> db =
      MakeWorkload(GetParam().id, GetParam().scale, /*seed=*/17);
  ASSERT_TRUE(db.ok());
  const double target_headroom =
      spec.default_total_seconds / spec.optimal_total_seconds;
  const double headroom = db->DefaultTotal() / db->OptimalTotal();
  EXPECT_NEAR(headroom, target_headroom, 0.05 * target_headroom);
  // The per-query average default latency is scale-invariant.
  const double avg_target = spec.default_total_seconds / spec.num_queries;
  EXPECT_NEAR(db->DefaultTotal() / db->num_queries(), avg_target,
              0.05 * avg_target);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndScales, ScaleSweep,
    ::testing::Values(ScaleParam{WorkloadId::kJob, 0.5},
                      ScaleParam{WorkloadId::kCeb, 0.05},
                      ScaleParam{WorkloadId::kCeb, 0.2},
                      ScaleParam{WorkloadId::kStack, 0.05},
                      ScaleParam{WorkloadId::kDsb, 0.1},
                      ScaleParam{WorkloadId::kStack2017, 0.05}));

TEST(MakeWorkloadTest, DifferentSeedsGiveDifferentInstances) {
  StatusOr<simdb::SimulatedDatabase> a = MakeWorkload(WorkloadId::kJob, 1.0, 1);
  StatusOr<simdb::SimulatedDatabase> b = MakeWorkload(WorkloadId::kJob, 1.0, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  int differing = 0;
  for (int i = 0; i < a->num_queries(); ++i) {
    if (a->TrueLatency(i, 0) != b->TrueLatency(i, 0)) ++differing;
  }
  EXPECT_GT(differing, a->num_queries() / 2);
}

TEST(Fig10Test, SeveritiesStayWithinDriftRange) {
  for (const DriftInterval& interval : Fig10DriftIntervals()) {
    EXPECT_GT(interval.severity, 0.0) << interval.label;
    EXPECT_LE(interval.severity, 1.0) << interval.label;
  }
}

}  // namespace
}  // namespace limeqo::workloads
