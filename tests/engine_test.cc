// Tests for the two-plane exploration engine: snapshot publication,
// observation-queue ordering, serving-decision purity, warm-started
// refits, and the warm-start no-leak contract. The concurrent tests here
// are the ThreadSanitizer coverage target for the serving plane (the CI
// tsan job runs `ctest -R "engine_test|serving_plane_test"`).

#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/als.h"
#include "core/engine.h"
#include "core/explorer.h"
#include "core/online.h"
#include "proptest.h"
#include "scenarios/scenario.h"
#include "scenarios/synthetic_backend.h"

namespace limeqo::core {
namespace {

WorkloadMatrix MakeMatrix(int n, int k, double fill, uint64_t seed) {
  WorkloadMatrix w(n, k);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    w.Observe(i, 0, rng.Uniform(0.1, 10.0));
    for (int j = 1; j < k; ++j) {
      if (rng.Bernoulli(fill)) w.Observe(i, j, rng.Uniform(0.01, 10.0));
    }
  }
  return w;
}

// ---------------------------------------------------------------------------
// Snapshot publication.
// ---------------------------------------------------------------------------

TEST(EngineTest, ConstructionPublishesAnInitialSnapshot) {
  ExplorationEngine engine(MakeMatrix(10, 5, 0.3, 1));
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_queries(), 10);
  EXPECT_EQ(snap->num_hints(), 5);
  EXPECT_FALSE(snap->has_predictions());
  EXPECT_EQ(snap->regret_spent(), 0.0);
}

TEST(EngineTest, PublishSwapsVersionAndOldSnapshotsStayValid) {
  ExplorationEngine engine(MakeMatrix(6, 4, 0.0, 2));  // defaults only
  std::shared_ptr<const ServingSnapshot> old_snap = engine.snapshot();
  const uint64_t v0 = engine.snapshot_version();
  engine.Observe(3, 2, 0.123);
  engine.Publish();
  EXPECT_GT(engine.snapshot_version(), v0);
  std::shared_ptr<const ServingSnapshot> new_snap = engine.snapshot();
  EXPECT_NE(old_snap.get(), new_snap.get());
  EXPECT_GT(new_snap->version(), old_snap->version());
  // Immutability: the retained old snapshot still reports the pre-update
  // state while the new one sees the observation.
  EXPECT_EQ(old_snap->state(3, 2), CellState::kUnobserved);
  EXPECT_EQ(new_snap->state(3, 2), CellState::kComplete);
}

TEST(EngineTest, SnapshotVerifiedTableMatchesOnlineOptimizer) {
  WorkloadMatrix w = MakeMatrix(20, 6, 0.4, 3);
  OnlineOptimizer reference(&w);
  std::vector<int> expected(20);
  for (int q = 0; q < 20; ++q) expected[q] = reference.ChooseHint(q);
  ExplorationEngine engine(std::move(w));
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  for (int q = 0; q < 20; ++q) {
    EXPECT_EQ(snap->VerifiedHint(q), expected[q]) << "query " << q;
    if (engine.matrix().IsComplete(q, expected[q])) {
      EXPECT_EQ(snap->VerifiedLatency(q),
                engine.matrix().observed(q, expected[q]));
    } else {
      EXPECT_TRUE(std::isinf(snap->VerifiedLatency(q)));
    }
  }
}

// ---------------------------------------------------------------------------
// Serving decisions are pure in (snapshot, serving index).
// ---------------------------------------------------------------------------

TEST(EngineTest, ChooseHintIsPureInServingIndex) {
  ExplorationEngine engine(MakeMatrix(12, 6, 0.3, 4));
  OnlineExplorationOptions online;
  online.epsilon = 0.5;
  online.min_predicted_ratio = 0.0;
  engine.ConfigureServing(online);
  engine.Publish();
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  // Any evaluation order, any repetition: the decision for (q, s) is fixed.
  std::vector<int> forward, backward;
  for (int s = 0; s < 100; ++s) forward.push_back(snap->ChooseHint(s % 12, s));
  for (int s = 99; s >= 0; --s) {
    backward.push_back(snap->ChooseHint(s % 12, s));
  }
  for (int s = 0; s < 100; ++s) {
    EXPECT_EQ(forward[s], backward[99 - s]) << "serving " << s;
  }
}

TEST(EngineTest, EpsilonZeroAndExhaustedBudgetServeVerifiedOnly) {
  WorkloadMatrix w = MakeMatrix(10, 5, 0.4, 5);
  OnlineOptimizer reference(&w);
  std::vector<int> verified(10);
  for (int q = 0; q < 10; ++q) verified[q] = reference.ChooseHint(q);
  ExplorationEngine engine(std::move(w));

  OnlineExplorationOptions online;
  online.epsilon = 0.0;
  engine.ConfigureServing(online);
  engine.Publish();
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  for (int s = 0; s < 50; ++s) {
    EXPECT_EQ(snap->ChooseHint(s % 10, s), verified[s % 10]);
  }

  // Exhaust the budget on the ledger, republish: exploration freezes.
  online.epsilon = 1.0;
  online.regret_budget_seconds = 1.0;
  engine.ConfigureServing(online);
  engine.ObserveServing(0, verified[0], 100.0, /*exploratory=*/true,
                        /*regret_delta=*/5.0);
  engine.Publish();
  snap = engine.snapshot();
  EXPECT_TRUE(snap->budget_exhausted());
  for (int s = 0; s < 50; ++s) {
    EXPECT_EQ(snap->ChooseHint(s % 10, s), snap->VerifiedHint(s % 10));
  }
}

// ---------------------------------------------------------------------------
// Engine-edge regressions: empty workloads, shape-stale predictions, and
// version-counter consistency.
// ---------------------------------------------------------------------------

TEST(EngineTest, ServeEpochOnAnEmptyWorkloadIsANoOpBarrier) {
  // A zero-row matrix is a legal workload (rows arrive via AppendQueries);
  // ServeEpoch used to compute s % 0 on it. The guarded path must execute
  // nothing while still running the epoch barrier.
  ExplorationEngine engine(WorkloadMatrix(0, 4));
  const uint64_t v0 = engine.snapshot_version();
  engine.ServeEpoch(0, 64, 2, [](int, int, uint64_t) -> double {
    ADD_FAILURE() << "no serving should execute on an empty workload";
    return 0.0;
  });
  EXPECT_EQ(engine.drained_servings(), 0u);
  EXPECT_GT(engine.snapshot_version(), v0);  // the barrier still published

  // Once rows exist the same engine serves normally.
  engine.AppendQueries(4);
  for (int q = 0; q < 4; ++q) engine.Observe(q, 0, 1.0 + q);
  engine.Publish();
  engine.ServeEpoch(0, 8, 2,
                    [](int, int, uint64_t) -> double { return 1.0; });
  EXPECT_EQ(engine.drained_servings(), 8u);
}

TEST(EngineTest, ServeEpochEmptyRangeRunsOnlyTheBarrier) {
  ExplorationEngine engine(MakeMatrix(5, 3, 0.2, 21));
  const uint64_t v0 = engine.snapshot_version();
  engine.ServeEpoch(7, 7, 3, [](int, int, uint64_t) -> double {
    ADD_FAILURE() << "empty range must not serve";
    return 0.0;
  });
  EXPECT_EQ(engine.drained_servings(), 0u);
  EXPECT_GT(engine.snapshot_version(), v0);
}

/// A predictor whose output shape is decoupled from the input matrix, to
/// reproduce shape-stale predictions.
class FixedShapePredictor : public Predictor {
 public:
  void SetShape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
  }
  StatusOr<linalg::Matrix> Predict(const WorkloadMatrix&) override {
    return linalg::Matrix(rows_, cols_, 1.0);
  }
  std::string name() const override { return "fixed-shape"; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
};

TEST(EngineTest, RefreshPredictionsRejectsHintColumnStaleness) {
  FixedShapePredictor predictor;
  predictor.SetShape(8, 5);
  ExplorationEngine engine(MakeMatrix(8, 5, 0.3, 22), &predictor);
  EXPECT_TRUE(engine.RefreshPredictions(/*force=*/true));
  engine.Publish();
  EXPECT_TRUE(engine.snapshot()->has_predictions());

  // The right row count but the wrong hint-column count: serving these
  // predictions would index them out of bounds in ChooseHint, so both the
  // refresh result and the published snapshot must reject them.
  predictor.SetShape(8, 7);
  EXPECT_FALSE(engine.RefreshPredictions(/*force=*/true));
  engine.Publish();
  EXPECT_FALSE(engine.snapshot()->has_predictions());
}

TEST(EngineTest, SnapshotVersionNeverDriftsFromThePublishedCounter) {
  ExplorationEngine engine(MakeMatrix(6, 4, 0.2, 23));
  for (int i = 0; i < 32; ++i) {
    engine.Observe(i % 6, 1 + i % 3, 0.5 + i);
    engine.Publish();
    EXPECT_EQ(engine.snapshot()->version(), engine.snapshot_version());
  }
}

TEST(EngineTest, PublishedVersionCounterNeverLagsAVisibleSnapshot) {
  // The version stamp and the counter bump come from one fetch_add inside
  // the publication critical section. Under the old split
  // read-stamp-swap-bump, a reader could fetch a snapshot whose version
  // was ahead of snapshot_version(); this hammers that window.
  ExplorationEngine engine(MakeMatrix(6, 4, 0.2, 24));
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int i = 0; i < 3000; ++i) {
      engine.Observe(i % 6, 1 + i % 3, 0.5);
      engine.Publish();
    }
    stop.store(true, std::memory_order_release);
  });
  while (!stop.load(std::memory_order_acquire)) {
    std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
    ASSERT_LE(snap->version(), engine.snapshot_version());
  }
  publisher.join();
  EXPECT_EQ(engine.snapshot()->version(), engine.snapshot_version());
}

// ---------------------------------------------------------------------------
// Observation queue: sequence-ordered drain.
// ---------------------------------------------------------------------------

TEST(EngineTest, DrainAppliesObservationsInServingOrder) {
  ExplorationEngine engine(MakeMatrix(4, 3, 0.0, 6));
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  // Report out of order: 2, 0, 1 — all on the same cell with distinct
  // latencies. A partial drain after seq 2 alone must apply nothing (the
  // prefix is not contiguous); after all three, the cell holds seq 2's
  // value because the drain replays in sequence order.
  engine.Report(snap->MakeObservation(2, 1, 1, 3.0));
  EXPECT_EQ(engine.Drain(), 0u);
  engine.Report(snap->MakeObservation(0, 1, 1, 1.0));
  engine.Report(snap->MakeObservation(1, 1, 1, 2.0));
  EXPECT_EQ(engine.Drain(), 3u);
  EXPECT_EQ(engine.drained_servings(), 3u);
  EXPECT_DOUBLE_EQ(engine.matrix().observed(1, 1), 3.0);
}

TEST(EngineTest, RegretLedgerAccumulatesFromObservationRecords) {
  WorkloadMatrix w(3, 3);
  for (int q = 0; q < 3; ++q) w.Observe(q, 0, 1.0);
  ExplorationEngine engine(std::move(w));
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  // Serving an unverified hint slower than the baseline charges regret.
  ServingObservation slow = snap->MakeObservation(0, 0, 1, 4.0);
  EXPECT_TRUE(slow.exploratory);
  EXPECT_DOUBLE_EQ(slow.regret_delta, 3.0);
  // A faster probe charges nothing.
  ServingObservation fast = snap->MakeObservation(1, 1, 2, 0.5);
  EXPECT_TRUE(fast.exploratory);
  EXPECT_DOUBLE_EQ(fast.regret_delta, 0.0);
  // Serving the verified plan is never exploratory.
  ServingObservation verified = snap->MakeObservation(2, 2, 0, 9.0);
  EXPECT_FALSE(verified.exploratory);
  EXPECT_DOUBLE_EQ(verified.regret_delta, 0.0);

  engine.Report(slow);
  engine.Report(fast);
  engine.Report(verified);
  EXPECT_EQ(engine.Drain(), 3u);
  EXPECT_DOUBLE_EQ(engine.regret_spent(), 3.0);
  EXPECT_EQ(engine.explorations(), 2);
}

// ---------------------------------------------------------------------------
// Queue wrap: producers a full lap ahead of the drain must block in
// Report's yield loop (back-pressure, never loss or overwrite).
// ---------------------------------------------------------------------------

TEST(EngineTest, ReportBlocksWhenAProducerLapsTheQueue) {
  EngineOptions options;
  options.queue_capacity = 64;  // the rounded-up minimum
  ExplorationEngine engine(MakeMatrix(4, 3, 0.0, 25), nullptr, options);
  ASSERT_EQ(engine.queue_capacity(), 64u);
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  // Fill exactly one lap without draining.
  for (uint64_t seq = 0; seq < 64; ++seq) {
    engine.Report(snap->MakeObservation(seq, static_cast<int>(seq % 4), 1,
                                        1.0 + static_cast<double>(seq)));
  }
  // Seq 64 maps to the slot still owned by seq 0: the producer must park
  // in the yield loop until the drain frees the lap.
  std::atomic<bool> completed{false};
  std::thread producer([&] {
    engine.Report(snap->MakeObservation(64, 0, 1, 99.0));
    completed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(completed.load(std::memory_order_acquire))
      << "Report returned while the queue was a full lap ahead of Drain";
  EXPECT_EQ(engine.Drain(), 64u);  // frees the lap, unblocks the producer
  producer.join();
  EXPECT_TRUE(completed.load(std::memory_order_acquire));
  EXPECT_EQ(engine.Drain(), 1u);
  EXPECT_EQ(engine.drained_servings(), 65u);
  EXPECT_DOUBLE_EQ(engine.matrix().observed(0, 1), 99.0);
}

TEST(EngineTest, QueueWrapStressManyLapsUnderConcurrentProducers) {
  // 4 producers push 64 laps' worth of observations through a 64-slot
  // queue while the main thread drains: every producer repeatedly runs a
  // full lap ahead and must wait its turn, and every observation must be
  // applied exactly once, in sequence order.
  constexpr int kProducers = 4;
  constexpr uint64_t kTotal = 4096;
  EngineOptions options;
  options.queue_capacity = 64;
  ExplorationEngine engine(MakeMatrix(8, 3, 0.0, 26), nullptr, options);
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (;;) {
        const uint64_t seq = engine.AcquireServingIndex();
        if (seq >= kTotal) break;
        engine.Report(snap->MakeObservation(
            seq, static_cast<int>(seq % 8), 1,
            1.0 + static_cast<double>(seq)));
      }
    });
  }
  uint64_t drained = 0;
  while (drained < kTotal) {
    drained += engine.Drain();
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(engine.drained_servings(), kTotal);
  EXPECT_EQ(engine.Drain(), 0u);
  // Sequence-ordered drain: the last writer of cell (q, 1) is the highest
  // seq mapping to q, so the cell must hold that latency.
  for (int q = 0; q < 8; ++q) {
    const uint64_t last_seq = kTotal - 8 + q;
    EXPECT_DOUBLE_EQ(engine.matrix().observed(q, 1),
                     1.0 + static_cast<double>(last_seq))
        << "query " << q;
  }
}

TEST(EngineTest, StalenessBoundHoldsWhenABatchSpansAPublicationMidLap) {
  // Regression pin for the free-running staleness bound
  //   2 * queue_capacity + threads * batch + publish_every
  // in the worst legal interleaving: a serving thread's claimed batch
  // spans a publication boundary mid-lap. Single-threaded emulation of
  // the adversarial schedule — every step below is something the real
  // planes can do:
  //   1. P-1 servings drain inside the first publish window (the cadence
  //      hasn't fired, so the published snapshot still says seq 0);
  //   2. producers fill a full lap of the queue on that stale snapshot;
  //   3. the train thread drains the lap but is descheduled between its
  //      Drain and its Publish;
  //   4. producers fill a second lap (Report admits up to drain front +
  //      capacity - 1);
  //   5. a thread claims one more batch of 16 and *decides* all of them
  //      before its first Report would block.
  // The decisions in step 5 are the farthest any serving can run ahead of
  // the snapshot that decides it.
  EngineOptions options;
  options.queue_capacity = 64;
  ExplorationEngine engine(MakeMatrix(8, 3, 0.0, 31), nullptr, options);
  const uint64_t kCapacity = engine.queue_capacity();
  const uint64_t kPublishEvery = 8;  // emulated cadence
  const uint64_t kBatch = 16;        // the driver's free-running claim size
  std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
  ASSERT_EQ(snap->published_seq(), 0u);

  uint64_t max_staleness = 0;
  const auto decide_and_report = [&](uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t seq = engine.AcquireServingIndex();
      const int q = static_cast<int>(seq % 8);
      const int hint = snap->ChooseHint(q, seq);
      max_staleness = std::max(max_staleness, seq - snap->published_seq());
      engine.Report(snap->MakeObservation(seq, q, hint, 1.0));
    }
  };

  decide_and_report(kPublishEvery - 1);         // seqs 0..6
  ASSERT_EQ(engine.Drain(), kPublishEvery - 1);  // front = 7, no publish yet
  decide_and_report(kCapacity);                  // seqs 7..70 fill a lap
  ASSERT_EQ(engine.Drain(), kCapacity);          // front = 71, publish missed
  decide_and_report(kCapacity);                  // seqs 71..134: second lap
  for (uint64_t i = 0; i < kBatch; ++i) {        // claimed batch 135..150,
    const uint64_t seq = engine.AcquireServingIndex();  // decisions only
    const int q = static_cast<int>(seq % 8);
    snap->ChooseHint(q, seq);
    max_staleness = std::max(max_staleness, seq - snap->published_seq());
  }

  const uint64_t bound = 2 * kCapacity + 1 * kBatch + kPublishEvery;
  EXPECT_LE(max_staleness, bound)
      << "worst-case interleaving exceeds the documented bound";
  // The scenario must actually reach the wrap regime (beyond two full
  // laps) or the pin is vacuous.
  EXPECT_GE(max_staleness, 2 * kCapacity);
  EXPECT_EQ(engine.Drain(), kCapacity);  // the second lap drains cleanly
}

// ---------------------------------------------------------------------------
// Concurrent serving: the TSan hammer. Serving threads run the real
// protocol (version probe, snapshot reuse, ChooseHint, Report) against the
// free-running background train plane.
// ---------------------------------------------------------------------------

TEST(EngineTest, ConcurrentServingDrainsEveryObservationExactlyOnce) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  scenarios::ScenarioSpec spec;
  spec.num_queries = 24;
  spec.num_hints = 8;
  spec.noise_sigma = 0.05;
  spec.seed = 77;
  scenarios::SyntheticBackend backend(spec);

  WorkloadMatrix w(spec.num_queries, spec.num_hints);
  for (int q = 0; q < spec.num_queries; ++q) {
    w.Observe(q, 0, backend.TrueLatency(q, 0));
  }
  AlsOptions als;
  als.convergence_tol = 1e-3;
  CompleterPredictor predictor(std::make_unique<AlsCompleter>(als));
  EngineOptions options;
  options.queue_capacity = 256;  // small: exercises the wrap/back-pressure
  options.online.epsilon = 0.4;
  options.online.min_predicted_ratio = 0.0;
  options.online.regret_budget_seconds = 1e9;
  ExplorationEngine engine(std::move(w), &predictor, options);

  engine.StartTraining();
  std::vector<std::thread> servers;
  servers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    servers.emplace_back([&] {
      std::shared_ptr<const ServingSnapshot> snap = engine.snapshot();
      uint64_t version = snap->version();
      for (int i = 0; i < kPerThread; ++i) {
        if (engine.snapshot_version() != version) {
          snap = engine.snapshot();
          version = snap->version();
        }
        const uint64_t seq = engine.AcquireServingIndex();
        const int q = static_cast<int>(seq % spec.num_queries);
        const int hint = snap->ChooseHint(q, seq);
        const double latency = backend.ServeLatency(q, hint, seq);
        engine.Report(snap->MakeObservation(seq, q, hint, latency));
      }
    });
  }
  for (std::thread& t : servers) t.join();
  engine.StopTraining();

  EXPECT_EQ(engine.drained_servings(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // The matrix stayed consistent under the concurrent traffic.
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      if (engine.matrix().IsComplete(q, j)) {
        EXPECT_GT(engine.matrix().observed(q, j), 0.0);
      }
    }
  }
  // Exploration actually happened and was accounted.
  EXPECT_GT(engine.explorations(), 0);
}

TEST(EngineTest, ServeEpochHandlesRangesLargerThanTheQueue) {
  // An epoch wider than the observation queue must not deadlock: ServeEpoch
  // chunks the range to the queue capacity and drains between chunks,
  // deciding everything on the one epoch snapshot.
  scenarios::ScenarioSpec spec;
  spec.num_queries = 10;
  spec.num_hints = 4;
  spec.noise_sigma = 0.0;
  spec.seed = 13;
  scenarios::SyntheticBackend backend(spec);
  WorkloadMatrix w(spec.num_queries, spec.num_hints);
  for (int q = 0; q < spec.num_queries; ++q) {
    w.Observe(q, 0, backend.TrueLatency(q, 0));
  }
  EngineOptions options;
  options.queue_capacity = 64;  // rounded-up minimum
  options.online.epsilon = 0.5;
  options.online.min_predicted_ratio = 0.0;
  options.online.regret_budget_seconds = 1e9;
  ExplorationEngine engine(std::move(w), nullptr, options);
  constexpr uint64_t kServings = 1000;  // ~16 queue laps
  engine.ServeEpoch(0, kServings, 2, [&](int q, int hint, uint64_t seq) {
    return backend.ServeLatency(q, hint, seq);
  });
  EXPECT_EQ(engine.drained_servings(), kServings);
}

// ---------------------------------------------------------------------------
// Warm-started completion: correctness properties (satellite).
// ---------------------------------------------------------------------------

/// Warm-started ALS must land on (essentially) the same fit as cold-start:
/// the warm start only moves the *initial* iterate, and with the
/// convergence tolerance both runs stop near the same alternating fixed
/// point. Checked on random scenario-shaped matrices: fit, observe a few
/// more cells, then compare CompleteFrom (warm) with a cold Complete on
/// the grown matrix.
TEST(EngineWarmStartTest, WarmStartConvergesToTheColdStartFit) {
  proptest::Config config;
  config.runs = 8;
  proptest::Check(
      "warm-started ALS agrees with cold-start within tolerance",
      [](proptest::Params& p) {
        const int n = static_cast<int>(p.Int(12, 60));
        const int k = static_cast<int>(p.Int(4, 12));
        const double fill = p.Double(0.1, 0.5);
        WorkloadMatrix w = MakeMatrix(n, k, fill, p.case_seed());

        AlsOptions options;
        options.seed = p.case_seed() ^ 0xA15u;
        options.convergence_tol = 1e-4;
        AlsCompleter warm_als(options);
        AlsCompleter cold_als(options);

        CompletionFactors factors;
        StatusOr<linalg::Matrix> first = warm_als.CompleteFrom(w, &factors);
        if (!first.ok()) return true;  // degenerate draw: nothing to fit
        // A few incremental observations, as between serving-plane epochs.
        Rng extra(p.case_seed() ^ 0xBEEFu);
        for (int e = 0; e < 8; ++e) {
          const int q = static_cast<int>(extra.NextUint64Below(n));
          const int j = static_cast<int>(extra.NextUint64Below(k));
          w.Observe(q, j, extra.Uniform(0.01, 10.0));
        }
        StatusOr<linalg::Matrix> warm = warm_als.CompleteFrom(w, &factors);
        StatusOr<linalg::Matrix> cold = cold_als.Complete(w);
        if (!warm.ok() || !cold.ok()) return false;

        // Compare fits in log space (latencies span orders of magnitude);
        // observed cells pass through identically, so the comparison is
        // really about the predictions.
        double se = 0.0;
        for (size_t c = 0; c < warm->size(); ++c) {
          const double d = std::log(std::max(warm->data()[c], 1e-9)) -
                           std::log(std::max(cold->data()[c], 1e-9));
          se += d * d;
        }
        const double rms = std::sqrt(se / warm->size());
        if (rms > 0.35) {
          std::cerr << "warm/cold log-RMS divergence " << rms << " on " << n
                    << "x" << k << " fill " << fill << "\n";
          return false;
        }
        return true;
      },
      config);
}

/// Warm refits must be measurably cheaper: entering the alternating loop
/// at the previous fixed point converges in fewer sweeps than a random
/// initialization (this is the bench_micro claim, asserted structurally).
TEST(EngineWarmStartTest, WarmStartConvergesInFewerSweeps) {
  // A *structured* world: on structureless noise ALS converges immediately
  // either way (the bias model already explains everything), so the warm
  // start can only show its win where the factors carry real signal.
  scenarios::ScenarioSpec spec;
  spec.num_queries = 300;
  spec.num_hints = 20;
  spec.latent_rank = 4;
  spec.structure_strength = 0.9;
  spec.seed = 42;
  scenarios::SyntheticBackend backend(spec);
  WorkloadMatrix w(spec.num_queries, spec.num_hints);
  Rng rng(5);
  for (int i = 0; i < spec.num_queries; ++i) {
    w.Observe(i, 0, backend.TrueLatency(i, 0));
    for (int j = 1; j < spec.num_hints; ++j) {
      if (rng.Bernoulli(0.15)) w.Observe(i, j, backend.TrueLatency(i, j));
    }
  }
  AlsOptions options;
  options.convergence_tol = 1e-3;
  AlsCompleter als(options);
  CompletionFactors factors;
  ASSERT_TRUE(als.CompleteFrom(w, &factors).ok());
  const int cold_iters = als.last_iterations();
  // Steady-state refresh: one epoch of new observations, then refit warm.
  Rng extra(7);
  for (int e = 0; e < 32; ++e) {
    const int q = static_cast<int>(extra.NextUint64Below(spec.num_queries));
    const int j = static_cast<int>(extra.NextUint64Below(spec.num_hints));
    w.Observe(q, j, backend.TrueLatency(q, j));
  }
  ASSERT_TRUE(als.CompleteFrom(w, &factors).ok());
  const int warm_iters = als.last_iterations();
  EXPECT_LT(warm_iters, cold_iters)
      << "warm=" << warm_iters << " cold=" << cold_iters;
}

/// The no-leak contract: after ResetAfterDataShift, a refit must be
/// bitwise identical to what a from-scratch engine computes on the same
/// matrix — nothing fitted on the pre-shift data may survive.
TEST(EngineWarmStartTest, FactorReuseNeverLeaksAcrossDataShift) {
  scenarios::ScenarioSpec spec;
  spec.num_queries = 30;
  spec.num_hints = 8;
  spec.noise_sigma = 0.0;
  spec.seed = 555;
  scenarios::SyntheticBackend backend(spec);
  RandomPolicy policy;
  ExplorerOptions options;
  options.seed = 11;
  OfflineExplorer explorer(&backend, &policy, options);
  explorer.Explore(0.3 * backend.DefaultWorkloadLatency());

  AlsOptions als;
  als.convergence_tol = 1e-3;
  CompleterPredictor predictor(std::make_unique<AlsCompleter>(als));
  explorer.engine().SetPredictor(&predictor);
  ASSERT_TRUE(explorer.engine().RefreshPredictions(/*force=*/true));
  ASSERT_FALSE(explorer.engine().warm_factors().empty());

  // Data shift: the engine must drop the warm factors with the stale
  // observations.
  backend.ApplyDrift(1.0);
  explorer.ResetAfterDataShift();
  EXPECT_TRUE(explorer.engine().warm_factors().empty());

  // And the post-shift refit equals a cold fit of the post-shift matrix,
  // bitwise: no pre-shift state can influence it.
  ASSERT_TRUE(explorer.engine().RefreshPredictions(/*force=*/true));
  AlsCompleter cold(als);
  StatusOr<linalg::Matrix> reference = cold.Complete(explorer.matrix());
  ASSERT_TRUE(reference.ok());
  const linalg::Matrix& refit = explorer.engine().predictions();
  ASSERT_EQ(refit.size(), reference->size());
  for (size_t c = 0; c < refit.size(); ++c) {
    ASSERT_EQ(refit.data()[c], reference->data()[c]) << "cell " << c;
  }
}

}  // namespace
}  // namespace limeqo::core
