// Rebalance/migration property test for the sharded serving tier: under
// random serving traffic and random migration schedules, a migrated row
// carries its observations, censoring state, and ledger charges bitwise;
// no serving is double-counted or lost across the fleet; and the
// migration-touched shards' post-migration refits are bitwise equal to a
// never-migrated twin fitted cold on the same cells. Seeded and
// shrinkable via tests/proptest.h (LIMEQO_PROPTEST_SEED replays).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/als.h"
#include "core/engine.h"
#include "core/predictor.h"
#include "core/shard_router.h"
#include "core/workload_matrix.h"
#include "proptest.h"
#include "scenarios/scenario.h"
#include "scenarios/synthetic_backend.h"

namespace limeqo::scenarios {
namespace {

// The cell payload + ledger slice a migration must move bitwise.
struct RowCapture {
  std::vector<core::CellState> states;
  std::vector<double> values;
  std::vector<double> timeouts;
  double regret = 0.0;
  int explorations = 0;
  uint64_t servings = 0;
};

RowCapture CaptureRow(const core::ExplorationEngine& e, int local) {
  RowCapture cap;
  const core::WorkloadMatrix& m = e.matrix();
  for (int h = 0; h < m.num_hints(); ++h) {
    cap.states.push_back(m.state(local, h));
    cap.values.push_back(m.values()(local, h));
    cap.timeouts.push_back(m.timeouts()(local, h));
  }
  cap.regret = e.row_regret(local);
  cap.explorations = e.row_explorations(local);
  cap.servings = e.row_servings(local);
  return cap;
}

bool RowMatches(const core::ExplorationEngine& e, int local,
                const RowCapture& cap) {
  const core::WorkloadMatrix& m = e.matrix();
  for (int h = 0; h < m.num_hints(); ++h) {
    if (m.state(local, h) != cap.states[h] ||
        m.values()(local, h) != cap.values[h] ||
        m.timeouts()(local, h) != cap.timeouts[h]) {
      std::fprintf(stderr, "cell (%d,%d) payload diverged after migration\n",
                   local, h);
      return false;
    }
  }
  if (e.row_regret(local) != cap.regret ||
      e.row_explorations(local) != cap.explorations) {
    std::fprintf(stderr,
                 "ledger slice diverged: (%.17g, %d) vs (%.17g, %d)\n",
                 e.row_regret(local), e.row_explorations(local), cap.regret,
                 cap.explorations);
    return false;
  }
  if (e.row_servings(local) != cap.servings) {
    std::fprintf(stderr, "servings count diverged: %llu vs %llu\n",
                 static_cast<unsigned long long>(e.row_servings(local)),
                 static_cast<unsigned long long>(cap.servings));
    return false;
  }
  return true;
}

// A never-migrated twin of one shard: the same cells replayed into a fresh
// matrix (complete observations supersede censored ones exactly as the
// migration replay does).
core::WorkloadMatrix TwinMatrix(const core::ExplorationEngine& e) {
  const core::WorkloadMatrix& src = e.matrix();
  core::WorkloadMatrix out(src.num_queries(), src.num_hints());
  for (int q = 0; q < src.num_queries(); ++q) {
    for (int h = 0; h < src.num_hints(); ++h) {
      switch (src.state(q, h)) {
        case core::CellState::kComplete:
          out.Observe(q, h, src.values()(q, h));
          break;
        case core::CellState::kCensored:
          out.ObserveCensored(q, h, src.timeouts()(q, h));
          break;
        case core::CellState::kUnobserved:
          break;
      }
    }
  }
  return out;
}

// Cold-refits a fresh engine on the twin matrix and compares its
// predictions bitwise to the (just force-refitted) live shard.
bool RefitMatchesTwin(const core::ExplorationEngine& live,
                      const core::AlsOptions& als,
                      const core::EngineOptions& opts, int shard) {
  if (live.matrix().num_queries() == 0) return true;
  auto completer = std::make_unique<core::AlsCompleter>(als);
  core::CompleterPredictor pred(std::move(completer));
  core::ExplorationEngine twin(TwinMatrix(live), &pred, opts);
  twin.RefreshPredictions(/*force=*/true);
  if (live.have_predictions() != twin.have_predictions()) {
    std::fprintf(stderr, "shard %d: refit availability diverged\n", shard);
    return false;
  }
  if (!live.have_predictions()) return true;
  const linalg::Matrix& a = live.predictions();
  const linalg::Matrix& b = twin.predictions();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != b(i, j)) {
        std::fprintf(stderr,
                     "shard %d: prediction (%zu,%zu) diverged from the "
                     "never-migrated twin: %.17g vs %.17g\n",
                     shard, i, j, a(i, j), b(i, j));
        return false;
      }
    }
  }
  return true;
}

TEST(ShardRebalanceTest, MigrationMovesRowsBitwiseAndLosesNothing) {
  proptest::Config config;
  config.runs = 8;
  proptest::Check(
      "migrated rows carry payload+ledger bitwise; fleet loses nothing",
      [](proptest::Params& p) {
        const int hints = static_cast<int>(p.Int(3, 6));
        const int rows = static_cast<int>(p.Int(8, 16));
        const int shards = static_cast<int>(p.Int(2, 4));
        const int growth = static_cast<int>(p.Int(0, 3));
        ScenarioSpec spec;
        spec.name = "rebalance-prop";
        spec.num_queries = rows + growth;
        spec.num_hints = hints;
        spec.latent_rank = static_cast<int>(p.Int(1, 3));
        spec.noise_sigma = p.Double(0.0, 0.2);
        spec.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));
        const SyntheticBackend backend(spec);

        core::WorkloadMatrix matrix(rows, hints);
        for (int q = 0; q < rows; ++q) {
          matrix.Observe(q, 0, backend.TrueLatency(q, 0));
          // Sprinkle censored cells so migration has censoring state to
          // carry (a timeout below the true latency stays censored).
          if (hints > 1 && p.Bool(0.4)) {
            const int h = 1 + static_cast<int>(p.Int(0, hints - 2));
            matrix.ObserveCensored(q, h, 0.5 * backend.TrueLatency(q, h));
          }
        }

        core::AlsOptions als;
        als.rank = static_cast<int>(p.Int(1, 2));
        als.iterations = 8;
        als.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));

        core::ShardedTierOptions options;
        options.num_shards = shards;
        options.online.epsilon = p.Double(0.1, 0.4);
        options.online.min_predicted_ratio = 0.05;
        options.online.regret_budget_seconds = p.Double(5.0, 50.0);
        options.online.refresh_every = static_cast<int>(p.Int(6, 16));
        options.online.publish_every = static_cast<int>(p.Int(3, 8));
        options.online.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));
        options.engine.warm_start = p.Bool(0.5);
        options.engine.delta_publication = p.Bool(0.7);

        std::vector<std::unique_ptr<core::Predictor>> preds;
        std::vector<core::Predictor*> pred_ptrs;
        for (int i = 0; i < shards; ++i) {
          preds.push_back(std::make_unique<core::CompleterPredictor>(
              std::make_unique<core::AlsCompleter>(als)));
          pred_ptrs.push_back(preds.back().get());
        }
        core::ShardedServingTier tier(matrix, pred_ptrs, options);
        tier.RefreshAll(/*force=*/true);
        tier.PublishAll();

        const auto resolve = [&backend](int q, int chosen, uint64_t seq) {
          core::ServedOutcome out;
          out.hint = chosen;
          out.latency = backend.ServeLatency(q, chosen, seq);
          return out;
        };

        uint64_t served = 0;
        int grown = 0;
        const int rounds = static_cast<int>(p.Int(2, 5));
        for (int round = 0; round < rounds; ++round) {
          const uint64_t cnt = static_cast<uint64_t>(p.Int(8, 30));
          const int threads = static_cast<int>(p.Int(1, 3));
          tier.ServeSchedule(served, served + cnt, threads, resolve);
          served += cnt;

          // Occasional growth: appended rows route by the same hash and
          // get their default hint observed (driver bring-up shape).
          if (grown < growth && p.Bool(0.4)) {
            const int g = tier.AppendQueries(1);
            ++grown;
            tier.shard_engine(tier.ShardOfRow(g))
                .Observe(tier.LocalRowOf(g), 0, backend.TrueLatency(g, 0));
            tier.RefreshAll(true);
            tier.PublishAll();
          }

          // A migration (targeted, or the hot-shard rebalancer) with the
          // bitwise payload capture around it.
          const int g = static_cast<int>(p.Int(0, tier.num_queries() - 1));
          const int dest = static_cast<int>(p.Int(0, shards - 1));
          const int src_shard = tier.ShardOfRow(g);
          const RowCapture cap =
              CaptureRow(tier.shard_engine(src_shard), tier.LocalRowOf(g));
          const double fleet_regret = tier.regret_spent();
          const int fleet_expl = tier.explorations();
          const bool used_rebalancer = p.Bool(0.3);
          if (used_rebalancer) {
            tier.RebalanceHotShards();
          } else {
            tier.MigrateRow(g, dest);
          }
          // Wherever row g lives now, its payload and ledger slice moved
          // bitwise, and the fleet totals did not drift.
          if (!RowMatches(tier.shard_engine(tier.ShardOfRow(g)),
                          tier.LocalRowOf(g), cap)) {
            return false;
          }
          if (std::abs(tier.regret_spent() - fleet_regret) > 1e-9) {
            std::fprintf(stderr, "fleet regret drifted: %.17g -> %.17g\n",
                         fleet_regret, tier.regret_spent());
            return false;
          }
          if (tier.explorations() != fleet_expl) {
            std::fprintf(stderr, "fleet explorations drifted: %d -> %d\n",
                         fleet_expl, tier.explorations());
            return false;
          }
          // The router maps stay a bijection.
          for (int row = 0; row < tier.num_queries(); ++row) {
            if (tier.GlobalRowOf(tier.ShardOfRow(row),
                                 tier.LocalRowOf(row)) != row) {
              std::fprintf(stderr, "router maps broke at row %d\n", row);
              return false;
            }
          }
          // Post-migration refits on the touched shards equal the
          // never-migrated twin. Migration invalidates the factor model on
          // the source and destination, so their next refit is cold on
          // exactly the replayed cells — only those shards are comparable
          // (the rebalancer doesn't report which shards it touched, and an
          // untouched shard may warm-start).
          if (!used_rebalancer && src_shard != dest) {
            tier.RefreshAll(true);
            tier.PublishAll();
            core::EngineOptions eopts = options.engine;
            eopts.online = options.online;
            for (int touched : {src_shard, dest}) {
              if (!RefitMatchesTwin(tier.shard_engine(touched), als, eopts,
                                    touched)) {
                return false;
              }
            }
          }
        }

        // No serving lost or double-counted across the fleet.
        uint64_t drained = 0;
        for (int i = 0; i < shards; ++i) {
          drained += tier.shard_engine(i).drained_servings();
        }
        if (drained != served || tier.scheduled_servings() != served) {
          std::fprintf(
              stderr,
              "serving accounting: %llu drained / %llu scheduled of %llu\n",
              static_cast<unsigned long long>(drained),
              static_cast<unsigned long long>(tier.scheduled_servings()),
              static_cast<unsigned long long>(served));
          return false;
        }
        return true;
      },
      config);
}

}  // namespace
}  // namespace limeqo::scenarios
