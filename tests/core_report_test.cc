#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/report.h"

namespace limeqo::core {
namespace {

TEST(ReportTest, EmptyMatrixHasNoImprovements) {
  WorkloadMatrix w(4, 3);
  WorkloadReport report = BuildReport(w);
  EXPECT_EQ(report.num_queries, 4);
  EXPECT_EQ(report.num_hints, 3);
  EXPECT_EQ(report.improved_queries, 0);
  EXPECT_EQ(report.missing_defaults, 4);
  EXPECT_DOUBLE_EQ(report.default_total, 0.0);
  for (const QueryReport& q : report.queries) {
    EXPECT_TRUE(std::isnan(q.default_latency));
    EXPECT_EQ(q.best_hint, 0);
  }
}

TEST(ReportTest, CountsImprovedQueriesAndSpeedups) {
  WorkloadMatrix w(3, 4);
  w.Observe(0, 0, 10.0);
  w.Observe(0, 2, 2.0);  // 5x speedup
  w.Observe(1, 0, 6.0);  // default only
  w.Observe(2, 0, 4.0);
  w.Observe(2, 1, 8.0);  // slower alternative: not an improvement
  WorkloadReport report = BuildReport(w);
  EXPECT_EQ(report.improved_queries, 1);
  EXPECT_EQ(report.missing_defaults, 0);
  EXPECT_DOUBLE_EQ(report.default_total, 20.0);
  EXPECT_DOUBLE_EQ(report.current_total, 12.0);  // 2 + 6 + 4
  EXPECT_EQ(report.queries[0].best_hint, 2);
  EXPECT_DOUBLE_EQ(report.queries[0].speedup, 5.0);
  EXPECT_EQ(report.queries[2].best_hint, 0);
  EXPECT_DOUBLE_EQ(report.queries[2].speedup, 1.0);
}

TEST(ReportTest, CensoredCellsAreCountedButNeverBest) {
  WorkloadMatrix w(1, 3);
  w.Observe(0, 0, 5.0);
  w.ObserveCensored(0, 1, 1.0);  // a lower bound, not a measurement
  WorkloadReport report = BuildReport(w);
  EXPECT_EQ(report.queries[0].censored_cells, 1);
  EXPECT_EQ(report.queries[0].complete_cells, 1);
  EXPECT_EQ(report.queries[0].best_hint, 0);
  EXPECT_DOUBLE_EQ(report.queries[0].best_latency, 5.0);
}

TEST(ReportTest, PrintHighlightsLargestAbsoluteGains) {
  WorkloadMatrix w(3, 2);
  w.Observe(0, 0, 100.0);
  w.Observe(0, 1, 50.0);  // saves 50 s
  w.Observe(1, 0, 10.0);
  w.Observe(1, 1, 1.0);  // saves 9 s but 10x speedup
  w.Observe(2, 0, 1.0);
  std::ostringstream os;
  PrintReport(BuildReport(w), os, /*top=*/2);
  const std::string out = os.str();
  // Query 0 (biggest absolute gain) is listed before query 1.
  EXPECT_LT(out.find("| 0"), out.find("| 1"));
  EXPECT_NE(out.find("2 queries improved"), std::string::npos);
}

TEST(ReportTest, WarnsAboutMissingDefaults) {
  WorkloadMatrix w(2, 2);
  w.Observe(0, 0, 1.0);
  w.Observe(1, 1, 2.0);  // row 1's default never observed
  std::ostringstream os;
  PrintReport(BuildReport(w), os);
  EXPECT_NE(os.str().find("WARNING: 1 queries have no observed default"),
            std::string::npos);
}

}  // namespace
}  // namespace limeqo::core
