// Driver-level tests of the concurrent serving plane: the deterministic
// schedule mode of SimulationDriver must produce a serving trace that is
// bitwise identical to the single-threaded trace at every thread count,
// while preserving every invariant the synchronous path checks. Part of
// the CI ThreadSanitizer target (`ctest -R "engine_test|serving_plane_test"`).

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "scenarios/scenario.h"
#include "scenarios/simulation.h"

namespace limeqo::scenarios {
namespace {

ScenarioSpec GridWorld(const std::string& name) {
  for (const ScenarioSpec& s : ScenarioGrid()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no grid world named " << name;
  return ScenarioSpec{};
}

SimulationResult RunConcurrent(const ScenarioSpec& spec, int threads,
                               PolicyKind policy = PolicyKind::kModelGuided) {
  RunConfig config;
  config.policy = policy;
  config.serve_threads = threads;
  return SimulationDriver(spec).Run(config);
}

// ---------------------------------------------------------------------------
// The acceptance invariant: merged concurrent traces are bitwise identical
// to the single-threaded trace at 1, 2, and 4 serving threads.
// ---------------------------------------------------------------------------

class ConcurrentTraceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConcurrentTraceTest, TraceIsBitwiseIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = GridWorld(GetParam());
  const SimulationResult single = RunConcurrent(spec, 1);
  ASSERT_TRUE(single.ok()) << single.Summary();
  ASSERT_EQ(static_cast<int>(single.serving_trace.size()),
            spec.online_servings);
  for (int threads : {2, 4}) {
    const SimulationResult multi = RunConcurrent(spec, threads);
    ASSERT_TRUE(multi.ok()) << threads << " threads: " << multi.Summary();
    // The full per-serving trace — query, hint, observed latency — must
    // merge to the same sequence, bitwise.
    ASSERT_EQ(single.serving_trace.size(), multi.serving_trace.size());
    for (size_t s = 0; s < single.serving_trace.size(); ++s) {
      ASSERT_TRUE(single.serving_trace[s] == multi.serving_trace[s])
          << "serving " << s << " diverges at " << threads << " threads: ("
          << single.serving_trace[s].query << ","
          << single.serving_trace[s].hint << ","
          << single.serving_trace[s].latency << ") vs ("
          << multi.serving_trace[s].query << ","
          << multi.serving_trace[s].hint << ","
          << multi.serving_trace[s].latency << ")";
    }
    EXPECT_EQ(single.final_latency, multi.final_latency);
    EXPECT_EQ(single.regret_spent, multi.regret_spent);
    EXPECT_EQ(single.explorations, multi.explorations);
    EXPECT_EQ(single.servings, multi.servings);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, ConcurrentTraceTest,
    ::testing::Values("baseline", "noisy-observations", "heavy-tail-extreme",
                      "plan-equivalence", "online-tight-budget"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// The trace must also be independent of the *linalg* thread count (the
// refits inside the epoch boundaries), on top of the serving thread count.
TEST(ConcurrentServingTest, TraceIndependentOfLinalgThreads) {
  const ScenarioSpec spec = GridWorld("baseline");
  SetNumThreads(1);
  const SimulationResult a = RunConcurrent(spec, 2);
  SetNumThreads(8);
  const SimulationResult b = RunConcurrent(spec, 2);
  SetNumThreads(1);
  ASSERT_TRUE(a.ok()) << a.Summary();
  ASSERT_TRUE(b.ok()) << b.Summary();
  ASSERT_EQ(a.serving_trace.size(), b.serving_trace.size());
  for (size_t s = 0; s < a.serving_trace.size(); ++s) {
    ASSERT_TRUE(a.serving_trace[s] == b.serving_trace[s]) << "serving " << s;
  }
  EXPECT_EQ(a.regret_spent, b.regret_spent);
}

// ---------------------------------------------------------------------------
// Invariants: the concurrent mode must preserve everything the driver
// checks — across the whole grid and all policies (run at 2 threads).
// ---------------------------------------------------------------------------

TEST(ConcurrentServingTest, GridInvariantsHoldUnderConcurrentServing) {
  for (const ScenarioSpec& spec : ScenarioGrid()) {
    for (PolicyKind policy :
         {PolicyKind::kRandom, PolicyKind::kGreedy, PolicyKind::kModelGuided}) {
      const SimulationResult result = RunConcurrent(spec, 2, policy);
      EXPECT_TRUE(result.ok())
          << "spec {" << Describe(spec) << "} policy "
          << PolicyKindName(policy) << "\n"
          << result.Summary();
    }
  }
}

// ---------------------------------------------------------------------------
// Free-running mode: a real background train thread against free-running
// serving threads — the deployment shape. Traces are timing-dependent, so
// the driver checks statistical invariants (hard staleness bound, gate
// correctness, slack-bounded regret, ledger consistency, eventual freeze)
// instead of bitwise equality. Part of the TSan coverage target.
// ---------------------------------------------------------------------------

SimulationResult RunFreeRunning(const ScenarioSpec& spec, int threads,
                                PolicyKind policy = PolicyKind::kModelGuided) {
  RunConfig config;
  config.policy = policy;
  config.serve_threads = threads;
  config.free_running = true;
  return SimulationDriver(spec).Run(config);
}

TEST(FreeRunningServingTest, GridInvariantsHoldUnderFreeRunningServing) {
  for (const ScenarioSpec& spec : ScenarioGrid()) {
    for (PolicyKind policy :
         {PolicyKind::kRandom, PolicyKind::kGreedy, PolicyKind::kModelGuided}) {
      const SimulationResult result = RunFreeRunning(spec, 2, policy);
      EXPECT_TRUE(result.ok())
          << "spec {" << Describe(spec) << "} policy "
          << PolicyKindName(policy) << " free-running\n"
          << result.Summary();
    }
  }
}

TEST(FreeRunningServingTest, InvariantsHoldAcrossServingThreadCounts) {
  const ScenarioSpec spec = GridWorld("baseline");
  for (int threads : {1, 2, 4}) {
    const SimulationResult result = RunFreeRunning(spec, threads);
    ASSERT_TRUE(result.ok())
        << threads << " threads: " << result.Summary();
    EXPECT_EQ(result.servings, spec.online_servings);
    // The staleness accounting is populated and ordered sanely.
    EXPECT_LE(result.staleness_p50, result.staleness_p95);
    EXPECT_LE(result.staleness_p95, result.staleness_max);
  }
}

TEST(FreeRunningServingTest, TightBudgetExhaustionFreezesExploration) {
  // online-tight-budget is the world built to exhaust its regret budget;
  // the driver's in-run gate check plus the post-run freeze probe are the
  // acceptance surface for freeze-after-exhaustion under races.
  const ScenarioSpec spec = GridWorld("online-tight-budget");
  const SimulationResult result = RunFreeRunning(spec, 4);
  EXPECT_TRUE(result.ok()) << result.Summary();
  // The slack the run reports must stay within the driver's in-flight
  // bound — a violation would have been recorded, so here we only sanity
  // check the field is populated in a consistent direction.
  EXPECT_GE(result.regret_slack, 0.0);
}

// ---------------------------------------------------------------------------
// With epsilon = 0 the serving plane degenerates to the verified rule: the
// trace must serve each query's verified-best hint from the offline phase.
// ---------------------------------------------------------------------------

TEST(ConcurrentServingTest, EpsilonZeroServesVerifiedHintsOnly) {
  ScenarioSpec spec = GridWorld("baseline");
  spec.epsilon = 0.0;
  spec.noise_sigma = 0.0;  // re-observations must not move the verified best
  const SimulationResult result = RunConcurrent(spec, 2);
  ASSERT_TRUE(result.ok()) << result.Summary();
  EXPECT_EQ(result.explorations, 0);
  EXPECT_EQ(result.regret_spent, 0.0);
  // Every query is always served the same hint (no exploration, and the
  // matrix's verified best cannot change when only verified plans run —
  // up to re-observation noise, which baseline has none of).
  std::vector<int> first_hint(spec.num_queries, -1);
  for (const ServingRecord& rec : result.serving_trace) {
    if (first_hint[rec.query] < 0) first_hint[rec.query] = rec.hint;
    EXPECT_EQ(rec.hint, first_hint[rec.query]) << "query " << rec.query;
  }
}

}  // namespace
}  // namespace limeqo::scenarios
