// Crash-consistent checkpoints of the exploration engine. The contract
// under test: a checkpoint captured at an op boundary (drain / refit /
// publish / append) and written through the real on-disk format restores
// into an engine whose remaining serving trace — at any thread count — is
// bitwise identical to the engine that never died, whose regret ledger and
// matrix agree exactly, and whose next refit warm-starts from the
// checkpointed factors. Plus the failure half: corrupted or truncated
// checkpoints are rejected loudly and the caller falls back to a cold
// start, and the free-running train loop's checkpoint cadence never
// exposes a torn file to a concurrent reader.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/als.h"
#include "core/engine.h"
#include "core/predictor.h"
#include "core/serialization.h"
#include "core/workload_matrix.h"
#include "proptest.h"
#include "scenarios/scenario.h"
#include "scenarios/synthetic_backend.h"

namespace limeqo::scenarios {
namespace {

// A unique checkpoint path per call, so proptest runs never collide.
std::string UniqueCheckpointPath(const char* tag) {
  static std::atomic<int> counter{0};
  std::ostringstream os;
  os << ::testing::TempDir() << "limeqo_" << tag << "_"
     << counter.fetch_add(1) << ".ckpt";
  return os.str();
}

// Bitwise matrix equality (values, mask, censoring thresholds, states).
::testing::AssertionResult MatricesIdentical(const core::WorkloadMatrix& a,
                                             const core::WorkloadMatrix& b) {
  if (a.num_queries() != b.num_queries() || a.num_hints() != b.num_hints()) {
    return ::testing::AssertionFailure()
           << "shape " << a.num_queries() << "x" << a.num_hints() << " vs "
           << b.num_queries() << "x" << b.num_hints();
  }
  for (int q = 0; q < a.num_queries(); ++q) {
    for (int j = 0; j < a.num_hints(); ++j) {
      if (a.values()(q, j) != b.values()(q, j) ||
          a.mask()(q, j) != b.mask()(q, j) ||
          a.timeouts()(q, j) != b.timeouts()(q, j) ||
          a.state(q, j) != b.state(q, j)) {
        return ::testing::AssertionFailure()
               << "cell (" << q << "," << j << ") differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// Builds an engine over `rows` queries of `backend` with the default plan
// of every row observed (the normal bring-up state).
core::WorkloadMatrix SeedMatrix(const SyntheticBackend& backend, int rows,
                                int hints) {
  core::WorkloadMatrix m(rows, hints);
  for (int q = 0; q < rows; ++q) m.Observe(q, 0, backend.TrueLatency(q, 0));
  return m;
}

// ---------------------------------------------------------------------------
// The twin schedule: a random interleaving of the train-plane op kinds a
// live engine performs between serving epochs. Every op ends in a
// publication — exactly what the train loop does after mutating state — so
// every op boundary is a legal kill point: the live snapshot, the drained
// matrix, and the ledgers all agree there, which is the consistency a
// checkpoint captures.
// ---------------------------------------------------------------------------

enum class OpKind { kEpoch, kObserve, kAppend, kRefit };
struct Op {
  OpKind kind;
  int arg = 0;
};

struct TraceEntry {
  int query = -1;
  int hint = -1;
  double latency = 0.0;
  bool valid = false;
};

void ApplyOp(core::ExplorationEngine& engine, const SyntheticBackend& backend,
             const Op& op, int threads, uint64_t* next_seq,
             std::vector<TraceEntry>* trace) {
  switch (op.kind) {
    case OpKind::kEpoch: {
      const uint64_t begin = *next_seq;
      const uint64_t end = begin + static_cast<uint64_t>(op.arg);
      engine.ServeEpoch(
          begin, end, threads,
          [&backend](int q, int h, uint64_t s) {
            return backend.ServeLatency(q, h, s);
          },
          [trace](uint64_t s, int q, int h, double latency) {
            (*trace)[s] = {q, h, latency, true};
          });
      *next_seq = end;
      break;
    }
    case OpKind::kObserve: {
      // One direct train-plane observation (the offline exploration path),
      // then republish so the serving plane sees it.
      const int n = engine.matrix().num_queries();
      const int k = engine.matrix().num_hints();
      const int q = op.arg % n;
      const int h = 1 + (op.arg / n) % (k - 1);
      engine.Observe(q, h, backend.TrueLatency(q, h));
      engine.Publish();
      break;
    }
    case OpKind::kAppend: {
      const int first = engine.AppendQueries(op.arg);
      for (int q = first; q < first + op.arg; ++q) {
        engine.Observe(q, 0, backend.TrueLatency(q, 0));
      }
      engine.Publish();
      break;
    }
    case OpKind::kRefit:
      engine.SyncEpoch();
      break;
  }
}

// ---------------------------------------------------------------------------
// Kill-and-restore twins: the headline property.
// ---------------------------------------------------------------------------

TEST(KillRestoreTest, RestoredTwinReplaysBitwiseAtEveryThreadCount) {
  proptest::Config config;
  config.runs = 8;
  proptest::Check(
      "kill-and-restore twin serves bitwise-identically",
      [](proptest::Params& p) {
        const int hints = static_cast<int>(p.Int(4, 8));
        const int init_rows = static_cast<int>(p.Int(6, 12));
        int append_budget = static_cast<int>(p.Int(0, 10));
        ScenarioSpec spec;
        spec.name = "kill-restore";
        spec.num_queries = init_rows + append_budget;
        spec.num_hints = hints;
        spec.latent_rank = static_cast<int>(p.Int(1, 3));
        spec.noise_sigma = p.Double(0.0, 0.2);
        spec.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));
        const SyntheticBackend backend(spec);

        core::EngineOptions opts;
        opts.online.epsilon = p.Double(0.1, 0.4);
        opts.online.min_predicted_ratio = 0.05;
        opts.online.regret_budget_seconds = p.Double(0.5, 10.0);
        opts.online.refresh_every = static_cast<int>(p.Int(6, 24));
        opts.online.publish_every = static_cast<int>(p.Int(4, 12));
        opts.online.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));
        opts.warm_start = p.Bool(0.7);
        opts.delta_publication = p.Bool(0.8);

        core::AlsOptions als;
        als.rank = static_cast<int>(p.Int(1, 3));
        als.iterations = 12;
        als.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));

        // Random op schedule, and a random op boundary to die at. The
        // remaining schedule must serve at least one epoch or the property
        // is vacuous.
        const int num_ops = static_cast<int>(p.Int(3, 7));
        std::vector<Op> ops;
        uint64_t total = 0;
        for (int i = 0; i < num_ops; ++i) {
          switch (p.Int(0, 3)) {
            case 0: {
              const int len = static_cast<int>(p.Int(6, 30));
              ops.push_back({OpKind::kEpoch, len});
              total += static_cast<uint64_t>(len);
              break;
            }
            case 1:
              ops.push_back({OpKind::kObserve, static_cast<int>(p.Int(0, 999))});
              break;
            case 2:
              if (append_budget > 0) {
                const int c = static_cast<int>(p.Int(1, append_budget));
                append_budget -= c;
                ops.push_back({OpKind::kAppend, c});
                break;
              }
              [[fallthrough]];
            default:
              ops.push_back({OpKind::kRefit, 0});
              break;
          }
        }
        const int kill_after = static_cast<int>(p.Int(0, num_ops - 1));
        bool tail_epoch = false;
        for (size_t i = static_cast<size_t>(kill_after) + 1; i < ops.size();
             ++i) {
          tail_epoch |= ops[i].kind == OpKind::kEpoch;
        }
        if (!tail_epoch) {
          ops.push_back({OpKind::kEpoch, 16});
          total += 16;
        }

        // Reference engine A: lives through the whole schedule, but writes
        // a checkpoint through the real file format at the kill boundary.
        auto als_a = std::make_unique<core::AlsCompleter>(als);
        core::CompleterPredictor pred_a(std::move(als_a));
        core::ExplorationEngine a(SeedMatrix(backend, init_rows, hints),
                                  &pred_a, opts);
        a.SyncEpoch();

        const std::string path = UniqueCheckpointPath("kill_restore");
        std::vector<TraceEntry> trace_a(total);
        uint64_t seq_a = 0;
        uint64_t kill_seq = 0;
        for (size_t i = 0; i < ops.size(); ++i) {
          ApplyOp(a, backend, ops[i], /*threads=*/1, &seq_a, &trace_a);
          if (i == static_cast<size_t>(kill_after)) {
            const Status saved =
                core::SaveEngineCheckpointToFile(a.MakeCheckpoint(), path);
            if (!saved.ok()) {
              std::fprintf(stderr, "save failed: %s\n",
                           saved.message().c_str());
              return false;
            }
            kill_seq = seq_a;
          }
        }

        // Twins: fresh engine + fresh completer restored from the file,
        // replaying the post-kill schedule at several thread counts.
        for (const int threads : {1, 2, 4}) {
          StatusOr<core::EngineCheckpoint> loaded =
              core::LoadEngineCheckpointFromFile(path);
          if (!loaded.ok()) {
            std::fprintf(stderr, "load failed: %s\n",
                         loaded.status().message().c_str());
            return false;
          }
          auto als_b = std::make_unique<core::AlsCompleter>(als);
          core::CompleterPredictor pred_b(std::move(als_b));
          core::ExplorationEngine b(core::WorkloadMatrix(1, hints), &pred_b,
                                    opts);
          b.RestoreFromCheckpoint(std::move(*loaded));

          std::vector<TraceEntry> trace_b(total);
          uint64_t seq_b = kill_seq;
          for (size_t i = static_cast<size_t>(kill_after) + 1; i < ops.size();
               ++i) {
            ApplyOp(b, backend, ops[i], threads, &seq_b, &trace_b);
          }
          if (seq_b != seq_a) {
            std::fprintf(stderr, "twin served to %llu, reference to %llu\n",
                         static_cast<unsigned long long>(seq_b),
                         static_cast<unsigned long long>(seq_a));
            return false;
          }
          for (uint64_t s = kill_seq; s < seq_a; ++s) {
            const TraceEntry& ea = trace_a[s];
            const TraceEntry& eb = trace_b[s];
            if (ea.valid != eb.valid || ea.query != eb.query ||
                ea.hint != eb.hint || ea.latency != eb.latency) {
              std::fprintf(
                  stderr,
                  "trace diverges at seq %llu (threads=%d): "
                  "ref (q=%d h=%d lat=%.17g) twin (q=%d h=%d lat=%.17g)\n",
                  static_cast<unsigned long long>(s), threads, ea.query,
                  ea.hint, ea.latency, eb.query, eb.hint, eb.latency);
              return false;
            }
          }
          if (!MatricesIdentical(a.matrix(), b.matrix())) return false;
          if (a.regret_spent() != b.regret_spent() ||
              a.explorations() != b.explorations()) {
            std::fprintf(stderr,
                         "ledger diverges: ref (%.17g, %d) twin (%.17g, %d)\n",
                         a.regret_spent(), a.explorations(), b.regret_spent(),
                         b.explorations());
            return false;
          }
        }
        std::remove(path.c_str());
        return true;
      },
      config);
}

// ---------------------------------------------------------------------------
// Restore mechanics: rewind, republication, and the save/load/save format
// fixed point.
// ---------------------------------------------------------------------------

TEST(CheckpointFormatTest, SaveLoadSaveIsByteIdentical) {
  ScenarioSpec spec;
  spec.num_queries = 14;
  spec.num_hints = 6;
  spec.seed = 41;
  const SyntheticBackend backend(spec);
  core::AlsOptions als;
  als.rank = 2;
  auto completer = std::make_unique<core::AlsCompleter>(als);
  core::CompleterPredictor pred(std::move(completer));
  core::EngineOptions opts;
  opts.online.epsilon = 0.25;
  opts.online.regret_budget_seconds = 4.0;
  core::ExplorationEngine engine(SeedMatrix(backend, 14, 6), &pred, opts);
  engine.Observe(3, 2, backend.TrueLatency(3, 2));
  engine.ObserveCensored(5, 4, 0.75);
  engine.SyncEpoch();
  engine.ServeEpoch(0, 32, 2, [&backend](int q, int h, uint64_t s) {
    return backend.ServeLatency(q, h, s);
  });

  const core::EngineCheckpoint original = engine.MakeCheckpoint();
  std::ostringstream first;
  ASSERT_TRUE(core::SaveEngineCheckpoint(original, first).ok());
  std::istringstream in(first.str());
  StatusOr<core::EngineCheckpoint> loaded = core::LoadEngineCheckpoint(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  std::ostringstream second;
  ASSERT_TRUE(core::SaveEngineCheckpoint(*loaded, second).ok());
  EXPECT_EQ(first.str(), second.str());

  EXPECT_EQ(loaded->serving_seq, 32u);
  EXPECT_EQ(loaded->regret_spent, original.regret_spent);
  EXPECT_EQ(loaded->explorations, original.explorations);
  EXPECT_EQ(loaded->have_predictions, original.have_predictions);
  EXPECT_TRUE(MatricesIdentical(loaded->matrix, original.matrix));
}

TEST(CheckpointRestoreTest, RestoreRewindsServingPlaneAndRepublishes) {
  ScenarioSpec spec;
  spec.num_queries = 10;
  spec.num_hints = 5;
  spec.seed = 42;
  const SyntheticBackend backend(spec);
  core::EngineOptions opts;
  opts.online.epsilon = 0.2;
  core::ExplorationEngine a(SeedMatrix(backend, 10, 5), nullptr, opts);
  a.SyncEpoch();
  a.ServeEpoch(0, 24, 1, [&backend](int q, int h, uint64_t s) {
    return backend.ServeLatency(q, h, s);
  });

  core::ExplorationEngine b(core::WorkloadMatrix(1, 5), nullptr, opts);
  b.RestoreFromCheckpoint(a.MakeCheckpoint());
  // The serving plane resumes exactly where the drained prefix ended...
  EXPECT_EQ(b.AcquireServingIndex(), 24u);
  // ...and a fresh snapshot of the restored state is already published.
  const std::shared_ptr<const core::ServingSnapshot> snap = b.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->published_seq(), 24u);
  EXPECT_EQ(snap->num_queries(), 10);
  EXPECT_TRUE(MatricesIdentical(a.matrix(), b.matrix()));
  EXPECT_EQ(a.regret_spent(), b.regret_spent());
}

// ---------------------------------------------------------------------------
// Warm restart vs cold start: the checkpointed factors must make the first
// post-restore refit converge in measurably fewer ALS sweeps.
// ---------------------------------------------------------------------------

TEST(WarmRestartTest, WarmRestartConvergesInFewerSweepsThanColdStart) {
  ScenarioSpec spec;
  spec.num_queries = 40;
  spec.num_hints = 10;
  spec.latent_rank = 2;
  spec.seed = 77;
  const SyntheticBackend backend(spec);
  core::WorkloadMatrix matrix(40, 10);
  for (int q = 0; q < 40; ++q) {
    matrix.Observe(q, 0, backend.TrueLatency(q, 0));
    for (int j = 1; j < 10; ++j) {
      if ((q * 3 + j) % 2 == 0) {
        matrix.Observe(q, j, backend.TrueLatency(q, j));
      }
    }
  }
  core::AlsOptions als;
  als.rank = 2;
  als.iterations = 80;
  als.convergence_tol = 1e-3;
  als.seed = 9;

  core::EngineOptions opts;
  auto als_fit = std::make_unique<core::AlsCompleter>(als);
  core::CompleterPredictor pred_fit(std::move(als_fit));
  core::ExplorationEngine fitted(std::move(matrix), &pred_fit, opts);
  ASSERT_TRUE(fitted.RefreshPredictions(/*force=*/true));
  const core::EngineCheckpoint warm = fitted.MakeCheckpoint();
  ASSERT_FALSE(warm.factors.empty());

  // Warm twin: restore factors + predictions, then force a refit.
  auto als_warm_owned = std::make_unique<core::AlsCompleter>(als);
  const core::AlsCompleter* als_warm = als_warm_owned.get();
  core::CompleterPredictor pred_warm(std::move(als_warm_owned));
  core::ExplorationEngine warm_engine(core::WorkloadMatrix(1, 10), &pred_warm,
                                      opts);
  warm_engine.RestoreFromCheckpoint(warm);
  ASSERT_TRUE(warm_engine.RefreshPredictions(/*force=*/true));

  // Cold twin: same matrix, but the factor state is gone (the situation
  // after a crash with no checkpoint — or a rejected one).
  core::EngineCheckpoint cold = warm;
  cold.factors.clear();
  cold.predictions = linalg::Matrix();
  cold.have_predictions = false;
  auto als_cold_owned = std::make_unique<core::AlsCompleter>(als);
  const core::AlsCompleter* als_cold = als_cold_owned.get();
  core::CompleterPredictor pred_cold(std::move(als_cold_owned));
  core::ExplorationEngine cold_engine(core::WorkloadMatrix(1, 10), &pred_cold,
                                      opts);
  cold_engine.RestoreFromCheckpoint(cold);
  ASSERT_TRUE(cold_engine.RefreshPredictions(/*force=*/true));

  EXPECT_LT(als_warm->last_iterations(), als_cold->last_iterations())
      << "warm restart should resume at (or near) the ALS fixed point";
}

// ---------------------------------------------------------------------------
// Rejection + fallback: a damaged checkpoint must fail loudly, and the
// caller's recovery is a legal cold start.
// ---------------------------------------------------------------------------

TEST(CheckpointRecoveryTest, CorruptedCheckpointIsRejectedWithColdFallback) {
  ScenarioSpec spec;
  spec.num_queries = 8;
  spec.num_hints = 4;
  spec.seed = 55;
  const SyntheticBackend backend(spec);
  core::EngineOptions opts;
  core::ExplorationEngine engine(SeedMatrix(backend, 8, 4), nullptr, opts);
  engine.SyncEpoch();
  const std::string path = UniqueCheckpointPath("corrupt");
  ASSERT_TRUE(core::SaveEngineCheckpointToFile(engine.MakeCheckpoint(), path)
                  .ok());

  // Flip one payload byte: the CRC must catch it.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    bytes = os.str();
  }
  ASSERT_GT(bytes.size(), 64u);
  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] ^= 0x5a;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << corrupted;
  }
  const StatusOr<core::EngineCheckpoint> flipped =
      core::LoadEngineCheckpointFromFile(path);
  EXPECT_FALSE(flipped.ok());
  EXPECT_FALSE(flipped.status().message().empty());

  // Truncation (the torn write a non-atomic writer would leave behind).
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 3);
  }
  const StatusOr<core::EngineCheckpoint> truncated =
      core::LoadEngineCheckpointFromFile(path);
  EXPECT_FALSE(truncated.ok());

  // The documented recovery: treat "no usable checkpoint" as a cold start.
  // An empty-backend bring-up is legal and grows through AppendQueries.
  if (!truncated.ok()) {
    core::ExplorationEngine cold(core::WorkloadMatrix(0, 4), nullptr, opts);
    EXPECT_EQ(cold.AppendQueries(8), 0);
    for (int q = 0; q < 8; ++q) cold.Observe(q, 0, backend.TrueLatency(q, 0));
    cold.SyncEpoch();
    cold.ServeEpoch(0, 16, 2, [&backend](int q, int h, uint64_t s) {
      return backend.ServeLatency(q, h, s);
    });
    EXPECT_EQ(cold.drained_servings(), 16u);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Free-running cadence: the train loop writes checkpoints while serving
// threads keep running, every write is crash-atomic (a concurrent reader
// never sees a torn file), and the final checkpoint agrees exactly with
// the engine that wrote it.
// ---------------------------------------------------------------------------

TEST(CheckpointCadenceTest, FreeRunningTrainLoopWritesConsistentCheckpoints) {
  constexpr uint64_t kTotal = 1500;
  constexpr int kRows = 16;
  constexpr int kHints = 6;
  ScenarioSpec spec;
  spec.num_queries = kRows;
  spec.num_hints = kHints;
  spec.seed = 99;
  const SyntheticBackend backend(spec);

  const std::string path = UniqueCheckpointPath("cadence");
  core::EngineOptions opts;
  opts.online.epsilon = 0.2;
  opts.online.regret_budget_seconds = 5.0;
  opts.online.publish_every = 8;
  opts.online.seed = 11;
  opts.queue_capacity = 64;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 25;
  core::ExplorationEngine engine(SeedMatrix(backend, kRows, kHints), nullptr,
                                 opts);
  engine.StartTraining();

  // A concurrent reader plays the post-crash restart: every checkpoint it
  // manages to open must parse — rename atomicity means it sees either the
  // previous complete file or the current complete one, never a torn mix.
  std::atomic<bool> done{false};
  std::atomic<int> reads_ok{0};
  std::atomic<int> torn_reads{0};
  std::thread reader([&] {
    bool last_pass = false;
    while (true) {
      const StatusOr<core::EngineCheckpoint> c =
          core::LoadEngineCheckpointFromFile(path);
      if (c.ok()) {
        reads_ok.fetch_add(1);
        if (c->serving_seq > kTotal || c->matrix.num_queries() != kRows ||
            c->matrix.num_hints() != kHints) {
          torn_reads.fetch_add(1);
        }
      } else if (reads_ok.load() > 0) {
        // Once one checkpoint exists, a reader must never fail again.
        torn_reads.fetch_add(1);
      }
      if (last_pass) break;
      if (done.load()) last_pass = true;  // one final read after shutdown
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> servers;
  for (int t = 0; t < 2; ++t) {
    servers.emplace_back([&] {
      std::shared_ptr<const core::ServingSnapshot> snap = engine.snapshot();
      uint64_t version = snap->version();
      while (true) {
        const uint64_t s = engine.AcquireServingIndex();
        if (s >= kTotal) break;
        if (engine.snapshot_version() != version) {
          snap = engine.snapshot();
          version = snap->version();
        }
        const int q = static_cast<int>(s % kRows);
        const int h = snap->ChooseHint(q, s);
        engine.Report(
            snap->MakeObservation(s, q, h, backend.ServeLatency(q, h, s)));
      }
    });
  }
  for (std::thread& t : servers) t.join();
  engine.StopTraining();
  done.store(true);
  reader.join();

  EXPECT_GE(engine.checkpoints_written(), 2u)
      << "the cadence plus the final StopTraining write";
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_GT(reads_ok.load(), 0);

  // The final checkpoint is exactly the engine that wrote it.
  const StatusOr<core::EngineCheckpoint> final_ckpt =
      core::LoadEngineCheckpointFromFile(path);
  ASSERT_TRUE(final_ckpt.ok()) << final_ckpt.status().message();
  EXPECT_EQ(final_ckpt->serving_seq, kTotal);
  EXPECT_TRUE(MatricesIdentical(final_ckpt->matrix, engine.matrix()));
  EXPECT_EQ(final_ckpt->regret_spent, engine.regret_spent());
  EXPECT_EQ(final_ckpt->explorations, engine.explorations());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace limeqo::scenarios
