#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/tcnn.h"
#include "nn/tree_conv.h"
#include "plan/plan_node.h"

namespace limeqo::nn {
namespace {

using plan::FlatPlan;
using plan::Operator;
using plan::PlanNode;

FlatPlan SmallFlatPlan() {
  auto l = PlanNode::MakeScan(Operator::kSeqScan, 0, 100.0, 50.0);
  auto r = PlanNode::MakeScan(Operator::kIndexScan, 1, 20.0, 5.0);
  auto root = PlanNode::MakeJoin(Operator::kHashJoin, std::move(l),
                                 std::move(r), 200.0, 40.0);
  return plan::FlattenPlan(*root);
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear layer(2, 1, &rng);
  // Read out the weights via a probe: y(e_i) - y(0) isolates column i.
  Vec zero{0.0, 0.0};
  const double b = layer.Forward(zero)[0];
  const double w0 = layer.Forward({1.0, 0.0})[0] - b;
  const double w1 = layer.Forward({0.0, 1.0})[0] - b;
  const double y = layer.Forward({2.0, 3.0})[0];
  EXPECT_NEAR(y, 2.0 * w0 + 3.0 * w1 + b, 1e-12);
}

TEST(LinearTest, GradientMatchesFiniteDifference) {
  Rng rng(2);
  Linear layer(3, 2, &rng);
  Vec x{0.5, -1.0, 2.0};
  // Loss = sum of outputs; dL/dy = (1, 1).
  Vec grad_out{1.0, 1.0};
  Vec grad_in = layer.Backward(grad_out, x);
  const double eps = 1e-6;
  for (int i = 0; i < 3; ++i) {
    Vec xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const Vec yp = layer.Forward(xp);
    const Vec ym = layer.Forward(xm);
    const double numeric =
        ((yp[0] + yp[1]) - (ym[0] + ym[1])) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, 1e-5);
  }
}

TEST(LinearTest, NoBiasVariantHasZeroAtOrigin) {
  Rng rng(3);
  Linear layer(4, 3, &rng, /*has_bias=*/false);
  Vec y = layer.Forward(Vec(4, 0.0));
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(layer.params().size(), 1u);
}

TEST(LeakyReluTest, ForwardAndBackward) {
  Vec x{-2.0, 0.0, 3.0};
  Vec y = LeakyRelu(x, 0.1);
  EXPECT_DOUBLE_EQ(y[0], -0.2);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
  Vec g = LeakyReluBackward({1.0, 1.0, 1.0}, x, 0.1);
  EXPECT_DOUBLE_EQ(g[0], 0.1);
  EXPECT_DOUBLE_EQ(g[2], 1.0);
}

TEST(DropoutTest, InferenceIsIdentity) {
  Rng rng(4);
  Dropout d(0.5);
  Vec x{1.0, 2.0, 3.0};
  EXPECT_EQ(d.Forward(x, false, &rng), x);
}

TEST(DropoutTest, TrainingZerosAndRescales) {
  Rng rng(5);
  Dropout d(0.5);
  Vec x(1000, 1.0);
  Vec y = d.Forward(x, true, &rng);
  int zeros = 0;
  for (double v : y) {
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 2.0, 1e-12);  // inverted dropout scaling 1/(1-p)
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.08);
}

TEST(EmbeddingTest, LookupAndGrow) {
  Rng rng(6);
  Embedding e(3, 4, &rng);
  Vec v0 = e.Forward(0);
  EXPECT_EQ(v0.size(), 4u);
  e.Append(2, &rng);
  EXPECT_EQ(e.count(), 5);
  EXPECT_EQ(e.Forward(0), v0);  // existing rows unchanged
}

TEST(EmbeddingTest, BackwardAccumulatesIntoRow) {
  Rng rng(7);
  Embedding e(2, 3, &rng);
  e.Backward(1, {1.0, 2.0, 3.0});
  e.Backward(1, {1.0, 0.0, 0.0});
  Param* table = e.params()[0];
  EXPECT_DOUBLE_EQ(table->grad(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(table->grad(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(table->grad(0, 0), 0.0);
}

TEST(TreeConvTest, LeafEqualsSelfFilterOnly) {
  Rng rng(8);
  FlatPlan flat = SmallFlatPlan();
  TreeConvLayer layer(plan::kNodeFeatureDim, 4, &rng);
  std::vector<Vec> out = layer.Forward(flat, flat.node_features);
  ASSERT_EQ(out.size(), 3u);
  // A leaf has no children: re-running with children zeroed out changes
  // nothing for the leaf but does change the root.
  FlatPlan no_children = flat;
  no_children.left_child.assign(3, -1);
  no_children.right_child.assign(3, -1);
  std::vector<Vec> out2 = layer.Forward(no_children, flat.node_features);
  for (size_t c = 0; c < out[1].size(); ++c) {
    EXPECT_DOUBLE_EQ(out[1][c], out2[1][c]);
  }
  bool root_changed = false;
  for (size_t c = 0; c < out[0].size(); ++c) {
    if (std::fabs(out[0][c] - out2[0][c]) > 1e-12) root_changed = true;
  }
  EXPECT_TRUE(root_changed);
}

TEST(TreeConvTest, GradientMatchesFiniteDifference) {
  Rng rng(9);
  FlatPlan flat = SmallFlatPlan();
  TreeConvLayer layer(plan::kNodeFeatureDim, 3, &rng);

  // Scalar loss: sum of all outputs.
  auto loss = [&](const std::vector<Vec>& inputs) {
    double s = 0.0;
    for (const Vec& v : layer.Forward(flat, inputs)) {
      for (double x : v) s += x;
    }
    return s;
  };

  std::vector<Vec> inputs = flat.node_features;
  std::vector<Vec> grad_out(flat.num_nodes(), Vec(3, 1.0));
  std::vector<Vec> grad_in = layer.Backward(flat, inputs, grad_out);

  const double eps = 1e-6;
  for (int node = 0; node < flat.num_nodes(); ++node) {
    for (size_t f = 0; f < inputs[node].size(); ++f) {
      std::vector<Vec> ip = inputs, im = inputs;
      ip[node][f] += eps;
      im[node][f] -= eps;
      const double numeric = (loss(ip) - loss(im)) / (2.0 * eps);
      EXPECT_NEAR(grad_in[node][f], numeric, 1e-4)
          << "node=" << node << " feature=" << f;
    }
  }
}

TEST(MaxPoolTest, ForwardPicksChannelMaxima) {
  std::vector<Vec> in{{1.0, 9.0}, {5.0, 2.0}};
  std::vector<int> argmax;
  Vec out = DynamicMaxPool::Forward(in, &argmax);
  EXPECT_EQ(out, (Vec{5.0, 9.0}));
  EXPECT_EQ(argmax, (std::vector<int>{1, 0}));
}

TEST(MaxPoolTest, BackwardRoutesToWinners) {
  std::vector<int> argmax{1, 0};
  std::vector<Vec> g = DynamicMaxPool::Backward({0.5, 0.25}, argmax, 2);
  EXPECT_DOUBLE_EQ(g[1][0], 0.5);
  EXPECT_DOUBLE_EQ(g[0][1], 0.25);
  EXPECT_DOUBLE_EQ(g[0][0], 0.0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 for a single scalar parameter.
  Param p(1, 1);
  p.value(0, 0) = 0.0;
  AdamOptions opt;
  opt.learning_rate = 0.1;
  Adam adam({&p}, opt);
  for (int step = 0; step < 500; ++step) {
    p.grad(0, 0) = 2.0 * (p.value(0, 0) - 3.0);
    adam.Step(1);
  }
  EXPECT_NEAR(p.value(0, 0), 3.0, 0.01);
}

TEST(TcnnTest, FitsTinyDataset) {
  Rng rng(10);
  FlatPlan flat = SmallFlatPlan();
  TcnnOptions opt;
  opt.conv_channels = {8, 4};
  opt.fc_hidden = {8};
  opt.max_epochs = 800;
  opt.adam.learning_rate = 5e-3;
  opt.dropout_p = 0.0;  // deterministic fit for this test
  opt.convergence_window = 10000;  // disable early stop
  TcnnModel model(4, 3, opt);

  // Four (query, hint) samples with distinct targets; same plan tree, so
  // the embeddings must do the work: this checks the transductive part.
  std::vector<TcnnSample> samples;
  const double targets[4] = {1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < 4; ++i) {
    TcnnSample s;
    s.flat = &flat;
    s.query = i;
    s.hint = i % 3;
    s.target = targets[i];
    samples.push_back(s);
  }
  const double final_loss = model.Train(samples);
  EXPECT_LT(final_loss, 0.05);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(model.PredictLog(flat, i, i % 3), targets[i], 0.4);
  }
}

TEST(TcnnTest, CensoredLossIgnoresPredictionsAboveThreshold) {
  Rng rng(11);
  FlatPlan flat = SmallFlatPlan();
  TcnnOptions opt;
  opt.conv_channels = {4};
  opt.fc_hidden = {4};
  opt.max_epochs = 200;
  opt.dropout_p = 0.0;
  opt.convergence_window = 1000;
  TcnnModel model(2, 2, opt);

  // One exact sample at 5.0 and one censored sample at threshold 1.0 for
  // the same coordinates: the censored sample must not drag the prediction
  // down to 1.0 (it is already above the threshold).
  std::vector<TcnnSample> samples;
  TcnnSample exact{&flat, 0, 0, 5.0, false};
  TcnnSample censored{&flat, 0, 0, 1.0, true};
  samples.push_back(exact);
  samples.push_back(censored);
  model.Train(samples);
  EXPECT_NEAR(model.PredictLog(flat, 0, 0), 5.0, 0.5);
}

TEST(TcnnTest, GrowQueriesKeepsWorking) {
  FlatPlan flat = SmallFlatPlan();
  TcnnOptions opt;
  opt.conv_channels = {4};
  opt.fc_hidden = {4};
  opt.max_epochs = 5;
  TcnnModel model(3, 2, opt);
  std::vector<TcnnSample> samples{{&flat, 0, 0, 2.0, false}};
  model.Train(samples);
  model.GrowQueries(6);
  EXPECT_EQ(model.num_queries(), 6);
  // New rows predict without crashing and training still works.
  (void)model.PredictLog(flat, 5, 1);
  samples.push_back({&flat, 5, 1, 3.0, false});
  model.Train(samples);
}

TEST(TcnnTest, ParameterCountLargerWithEmbeddings) {
  TcnnOptions with;
  TcnnOptions without;
  without.use_embeddings = false;
  TcnnModel a(10, 5, with);
  TcnnModel b(10, 5, without);
  EXPECT_GT(a.NumParameters(), b.NumParameters());
  EXPECT_GT(b.NumParameters(), 0);
}

}  // namespace
}  // namespace limeqo::nn
