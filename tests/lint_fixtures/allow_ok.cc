// Fixture: a justified lint:allow suppresses the rule on the next code
// line (trailing-comment form and block-comment form both work).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

std::atomic<uint64_t> probes{0};

void IdleBackoff() {
  // lint:allow(sleep): idle-path backoff only; nothing trace-visible
  // depends on when this thread wakes.
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

uint64_t Probe() {
  return probes.load();  // lint:allow(memory_order): monotonic stats probe
}
