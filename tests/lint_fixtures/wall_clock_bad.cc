// Fixture: the wall_clock rule must flag every wall-clock read.
#include <chrono>
#include <ctime>

double WallSeconds() {
  const auto now = std::chrono::system_clock::now();  // flagged
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long HighRes() {
  return std::chrono::high_resolution_clock::now()  // flagged
      .time_since_epoch()
      .count();
}

long CTime() { return static_cast<long>(std::time(nullptr)); }  // flagged
