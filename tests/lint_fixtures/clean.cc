// Fixture: deterministic idiom passes every rule — ordered containers,
// explicitly ordered atomics, steady_clock (monotonic, bench-style), and
// banned spellings appearing only in comments or string literals.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

std::atomic<uint64_t> sequence{0};

// rand() and std::chrono::system_clock in a comment are not code.
const char* kDoc = "never call rand() or read system_clock here";

double SumValues(const std::map<std::string, double>& scores) {
  double total = 0.0;
  for (const auto& entry : scores) total += entry.second;  // ordered: fine
  return total;
}

uint64_t NextSequence() {
  return sequence.fetch_add(1, std::memory_order_relaxed);
}

double MonotonicSeconds() {
  // steady_clock is monotonic, not wall-clock; fine for benchmarks.
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
