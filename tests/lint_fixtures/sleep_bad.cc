// Fixture: the sleep rule must flag blocking sleeps in library code.
#include <chrono>
#include <thread>

void Backoff() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // flagged
}

void Until() {
  std::this_thread::sleep_until(  // flagged
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1));
}
