// Fixture: the unordered rule must flag hash-order iteration but leave
// point lookups alone.
#include <string>
#include <unordered_map>
#include <unordered_set>

double SumValues(const std::unordered_map<std::string, double>& scores) {
  double total = 0.0;
  const std::unordered_map<std::string, double>& table = scores;
  for (const auto& entry : table) {  // flagged: range-for over hash order
    total += entry.second;
  }
  return total;
}

int FirstElement(const std::unordered_set<int>& seen) {
  std::unordered_set<int> copy = seen;
  return *copy.begin();  // flagged: iterator walk over hash order
}

bool Lookup(const std::unordered_map<std::string, double>& scores,
            const std::string& key) {
  return scores.count(key) > 0;  // not flagged: point lookup is fine
}
