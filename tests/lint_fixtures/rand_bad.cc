// Fixture: the rand rule must flag libc rand and std::random_device.
#include <cstdlib>
#include <random>

int LibcDraw() { return rand(); }  // flagged

void Seed() { srand(42); }  // flagged

unsigned DeviceDraw() {
  std::random_device rd;  // flagged
  return rd();
}
