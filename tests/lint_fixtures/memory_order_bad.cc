// Fixture: the memory_order rule must flag every defaulted-order atomic
// operation, including the operator forms that hide a seq_cst op.
#include <atomic>
#include <cstdint>

std::atomic<uint64_t> counter{0};
std::atomic<bool> stop_flag{false};

uint64_t BareLoad() { return counter.load(); }  // flagged

void BareStore(uint64_t v) { counter.store(v); }  // flagged

void BareFetchAdd() { counter.fetch_add(1); }  // flagged

void OperatorIncrement() { ++counter; }  // flagged: seq_cst RMW in disguise

void OperatorAssign() { stop_flag = true; }  // flagged: seq_cst store

bool ImplicitRead() { return stop_flag; }  // flagged: seq_cst load

uint64_t ExplicitLoad() {  // not flagged: the ordering is named
  return counter.load(std::memory_order_acquire);
}
