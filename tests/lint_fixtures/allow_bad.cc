// Fixture: an allow without a justification is itself a violation (and
// does not suppress the underlying finding).
#include <chrono>
#include <thread>

void Backoff() {
  // lint:allow(sleep)
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
