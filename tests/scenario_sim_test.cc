#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "scenarios/scenario.h"
#include "scenarios/simulation.h"
#include "scenarios/synthetic_backend.h"

namespace limeqo::scenarios {
namespace {

// ---------------------------------------------------------------------------
// SyntheticBackend: the generated world itself must honour its contract.
// ---------------------------------------------------------------------------

TEST(SyntheticBackendTest, WorldIsDeterministicFromSpec) {
  ScenarioSpec spec;
  spec.noise_sigma = 0.1;
  SyntheticBackend a(spec);
  SyntheticBackend b(spec);
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      ASSERT_EQ(a.TrueLatency(q, j), b.TrueLatency(q, j));
    }
  }
  // Per-execution noise is keyed by (cell, visit), not call order: visiting
  // cells in different orders observes identical latencies.
  const double first = a.Execute(3, 4, 0.0).observed_latency;
  b.Execute(7, 1, 0.0);
  EXPECT_EQ(b.Execute(3, 4, 0.0).observed_latency, first);
}

TEST(SyntheticBackendTest, DifferentSeedsGiveDifferentWorlds) {
  ScenarioSpec spec;
  SyntheticBackend a(spec);
  spec.seed = spec.seed + 1;
  SyntheticBackend b(spec);
  int differing = 0;
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      if (a.TrueLatency(q, j) != b.TrueLatency(q, j)) ++differing;
    }
  }
  EXPECT_GT(differing, spec.num_queries * spec.num_hints / 2);
}

TEST(SyntheticBackendTest, TimeoutCutsOffAndReportsCensoring) {
  ScenarioSpec spec;
  spec.noise_sigma = 0.0;
  SyntheticBackend backend(spec);
  const double truth = backend.TrueLatency(0, 1);
  const core::BackendResult cut = backend.Execute(0, 1, truth / 2.0);
  EXPECT_TRUE(cut.timed_out);
  EXPECT_DOUBLE_EQ(cut.observed_latency, truth / 2.0);
  const core::BackendResult full = backend.Execute(0, 1, truth * 2.0);
  EXPECT_FALSE(full.timed_out);
  EXPECT_DOUBLE_EQ(full.observed_latency, truth);
  EXPECT_EQ(backend.timeouts_reported(), 1);
  EXPECT_EQ(backend.executions(), 2);
}

TEST(SyntheticBackendTest, EquivalentHintsShareIdenticalLatency) {
  ScenarioSpec spec;
  spec.equivalence_class_size = 3;
  SyntheticBackend backend(spec);
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      const std::vector<int> cls = backend.EquivalentHints(q, j);
      ASSERT_FALSE(cls.empty());
      for (int other : cls) {
        EXPECT_EQ(backend.TrueLatency(q, other), backend.TrueLatency(q, j))
            << "plan-equivalent hints " << j << " and " << other
            << " disagree on query " << q;
      }
    }
  }
}

TEST(SyntheticBackendTest, DriftMovesRoughlySeverityFractionOfRows) {
  ScenarioSpec spec;
  spec.num_queries = 200;
  SyntheticBackend backend(spec);
  std::vector<double> before(spec.num_queries);
  for (int q = 0; q < spec.num_queries; ++q) {
    before[q] = backend.TrueLatency(q, 0);
  }
  backend.ApplyDrift(0.5);
  int moved = 0;
  for (int q = 0; q < spec.num_queries; ++q) {
    if (backend.TrueLatency(q, 0) != before[q]) ++moved;
  }
  EXPECT_GT(moved, spec.num_queries / 4);
  EXPECT_LT(moved, spec.num_queries * 3 / 4);
}

TEST(SyntheticBackendTest, HeavyTailProducesCatastrophicCells) {
  ScenarioSpec spec;
  spec.tail = TailModel::kParetoMix;
  spec.heavy_tail_prob = 0.1;
  spec.heavy_tail_scale = 25.0;
  spec.num_queries = 100;
  SyntheticBackend backend(spec);
  int catastrophic = 0;
  for (int q = 0; q < spec.num_queries; ++q) {
    const double base = backend.TrueLatency(q, 0);
    for (int j = 1; j < spec.num_hints; ++j) {
      if (backend.TrueLatency(q, j) > 10.0 * base) ++catastrophic;
    }
  }
  EXPECT_GT(catastrophic, 20);
}

// ---------------------------------------------------------------------------
// The scenario grid: every generated configuration, under every policy,
// must satisfy the paper's invariants. On failure the message carries the
// full spec line (including the seed) so the run reproduces from the log.
// ---------------------------------------------------------------------------

class ScenarioGridTest
    : public ::testing::TestWithParam<std::tuple<size_t, PolicyKind>> {};

TEST_P(ScenarioGridTest, InvariantsHold) {
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  const size_t index = std::get<0>(GetParam());
  ASSERT_LT(index, grid.size());
  const ScenarioSpec& spec = grid[index];
  SimulationDriver driver(spec);
  const SimulationResult result = driver.Run(std::get<1>(GetParam()));
  EXPECT_TRUE(result.ok())
      << "invariants violated; reproduce with spec {" << Describe(spec)
      << "}\n"
      << result.Summary();
  // Sanity on the headline numbers: the run actually explored something
  // and the serving latency stayed within [optimal, default]-ish bounds
  // (noise can shift observed sums slightly below true optimum).
  EXPECT_GT(result.executions, 0) << Describe(spec);
  if (spec.online_servings > 0) {
    EXPECT_GT(result.servings, 0) << Describe(spec);
  }
}

std::string GridParamName(
    const ::testing::TestParamInfo<std::tuple<size_t, PolicyKind>>& info) {
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  std::string name = grid[std::get<0>(info.param)].name + "_" +
                     PolicyKindName(std::get<1>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenarioGridTest,
    ::testing::Combine(::testing::Range<size_t>(0, ScenarioGrid().size()),
                       ::testing::Values(PolicyKind::kRandom,
                                         PolicyKind::kGreedy,
                                         PolicyKind::kModelGuided)),
    GridParamName);

TEST(ScenarioGridTest, GridCoversRequiredRegimes) {
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  // The acceptance bar: at least 12 configurations, jointly covering
  // drift, heavy-tail, and timeout regimes.
  EXPECT_GE(grid.size(), 12u);
  int with_drift = 0;
  int with_arrivals = 0;
  int heavy_tail = 0;
  int no_timeouts = 0;
  int tight_timeouts = 0;
  std::set<std::string> names;
  for (const ScenarioSpec& s : grid) {
    names.insert(s.name);
    if (!s.drift.empty()) ++with_drift;
    if (!s.arrivals.empty()) ++with_arrivals;
    if (s.tail == TailModel::kParetoMix && s.heavy_tail_prob > 0.0) {
      ++heavy_tail;
    }
    if (!s.use_timeouts) ++no_timeouts;
    if (s.use_timeouts && s.timeout_alpha < 1.2) ++tight_timeouts;
    EXPECT_GT(s.online_servings, 0)
        << s.name << " skips the online phase, so the regret-budget "
        << "invariant would go unchecked";
  }
  EXPECT_EQ(names.size(), grid.size()) << "duplicate scenario names";
  EXPECT_GE(with_drift, 3);
  EXPECT_GE(with_arrivals, 3);
  EXPECT_GE(heavy_tail, 3);
  EXPECT_GE(no_timeouts, 1);
  EXPECT_GE(tight_timeouts, 1);
}

// ---------------------------------------------------------------------------
// Completer quality floors (promoted ROADMAP item): on the structured
// no-drift grid worlds, ALS-greedy must land within a fixed margin of the
// planted optimum. The margins are the bench_scenarios numbers at the time
// the floors were promoted (PR 4), with headroom so seeded determinism,
// not luck, keeps them green: a regression in the completer or the policy
// stack shows up here as a hard failure instead of a silent bench drift.
// The floor metric is the normalized gap
//   (final - optimal) / (default - optimal)
// — 0 means the planted optimum was reached, 1 means no improvement over
// serving defaults.
// ---------------------------------------------------------------------------

TEST(ScenarioQualityFloors, AlsGreedyReachesWithinMarginOfPlantedOptimum) {
  // world -> maximum allowed normalized gap. Measured gaps at promotion
  // time (seed-pinned): baseline 0.56, skinny 0.48,
  // rank1-strong-structure 0.14, heavy-tail-mild 0.26,
  // heavy-tail-extreme 0.15, arrival-bursts 0.12, arrival-midstream 0.51,
  // large-sparse 0.88.
  const std::vector<std::pair<std::string, double>> floors = {
      {"baseline", 0.75},
      {"skinny", 0.70},
      {"rank1-strong-structure", 0.35},
      {"heavy-tail-mild", 0.50},
      {"heavy-tail-extreme", 0.40},
      {"arrival-bursts", 0.40},
      {"arrival-midstream", 0.75},
      {"large-sparse", 0.95},
  };
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  for (const auto& [name, max_gap] : floors) {
    const auto it = std::find_if(
        grid.begin(), grid.end(),
        [&name = name](const ScenarioSpec& s) { return s.name == name; });
    ASSERT_NE(it, grid.end()) << "grid world " << name << " disappeared";
    SimulationDriver driver(*it);
    const SimulationResult r = driver.Run(PolicyKind::kModelGuided);
    ASSERT_TRUE(r.ok()) << r.Summary();
    ASSERT_GT(r.default_latency, r.optimal_latency) << name;
    const double gap = (r.final_latency - r.optimal_latency) /
                       (r.default_latency - r.optimal_latency);
    EXPECT_LE(gap, max_gap)
        << name << ": normalized gap " << gap << " exceeds the promoted "
        << "floor " << max_gap << "\n"
        << r.Summary();
    // And exploration must never leave the workload worse than serving
    // defaults (no-regression at workload granularity).
    EXPECT_LE(r.final_latency, r.default_latency * 1.0 + 1e-9) << name;
  }
}

// ---------------------------------------------------------------------------
// Revisit-censored exploration (ROADMAP item): a query whose planted
// optimum was censored by a tight model-driven timeout stays stuck at its
// default forever under the unobserved-only rule; the revisit variant
// recovers it. This spec (heavy Pareto tail, alpha = 1.2, strong
// structure) plants exactly that situation — measured against the same
// run with the flag off.
// ---------------------------------------------------------------------------

TEST(ScenarioRevisitCensored, RecoversQueriesStuckBehindTightTimeouts) {
  ScenarioSpec spec;
  spec.name = "revisit-censored-demo";
  spec.num_queries = 50;
  spec.num_hints = 12;
  spec.tail = TailModel::kParetoMix;
  spec.heavy_tail_prob = 0.12;
  spec.heavy_tail_scale = 30.0;
  spec.structure_strength = 0.9;
  spec.good_hint_fraction = 0.3;
  spec.good_hint_gain = 0.3;
  spec.timeout_alpha = 1.2;
  spec.budget_fraction = 1.0;
  spec.batch_size = 8;
  spec.noise_sigma = 0.0;
  spec.online_servings = 0;
  spec.seed = 41;

  RunConfig plain;
  RunConfig revisit;
  revisit.revisit_censored = true;
  const SimulationResult off = SimulationDriver(spec).Run(plain);
  const SimulationResult on = SimulationDriver(spec).Run(revisit);
  ASSERT_TRUE(off.ok()) << off.Summary();
  ASSERT_TRUE(on.ok()) << on.Summary();
  // The revisit variant strictly improves this world (4.4s of the 5.5s
  // remaining gap at promotion time) because censored-at-tight-timeout
  // optima get a second chance with a looser bound.
  EXPECT_LT(on.final_latency, off.final_latency)
      << "revisit-on: " << on.Summary() << "\nrevisit-off: "
      << off.Summary();
}

TEST(ScenarioRevisitCensored, HeavyTailGridWorldsStayCleanWithRevisitOn) {
  for (const ScenarioSpec& spec : ScenarioGrid()) {
    if (spec.tail != TailModel::kParetoMix) continue;
    for (PolicyKind policy : {PolicyKind::kGreedy, PolicyKind::kModelGuided}) {
      RunConfig config;
      config.policy = policy;
      config.revisit_censored = true;
      const SimulationResult result = SimulationDriver(spec).Run(config);
      EXPECT_TRUE(result.ok())
          << "revisit-censored on {" << Describe(spec) << "} under "
          << PolicyKindName(policy) << "\n" << result.Summary();
    }
  }
}

// ---------------------------------------------------------------------------
// Model-guided exploration should beat Random on a structured world — the
// paper's central Sec. 4.2 claim, now checkable on any generated scenario.
// ---------------------------------------------------------------------------

TEST(ScenarioGridTest, ModelGuidedBeatsRandomOnStructuredWorld) {
  ScenarioSpec spec;
  spec.name = "structured-comparison";
  spec.num_queries = 60;
  spec.latent_rank = 2;
  spec.structure_strength = 0.9;
  spec.budget_fraction = 0.4;
  spec.online_servings = 0;
  spec.seed = 424242;
  const SimulationResult random =
      SimulationDriver(spec).Run(PolicyKind::kRandom);
  const SimulationResult guided =
      SimulationDriver(spec).Run(PolicyKind::kModelGuided);
  ASSERT_TRUE(random.ok()) << random.Summary();
  ASSERT_TRUE(guided.ok()) << guided.Summary();
  // Both start from the same world; the model-guided run must end at least
  // as good (allow 5% slack for tie-break noise on an easy world).
  EXPECT_LE(guided.final_latency, random.final_latency * 1.05)
      << "guided: " << guided.Summary() << "\nrandom: " << random.Summary();
}

// ---------------------------------------------------------------------------
// Whole-pipeline determinism: the same scenario must produce the same
// result object regardless of the linalg thread count.
// ---------------------------------------------------------------------------

TEST(ScenarioGridTest, SimulationIsBitwiseDeterministicAcrossThreadCounts) {
  ScenarioSpec spec = ScenarioGrid()[0];
  SetNumThreads(1);
  const SimulationResult single =
      SimulationDriver(spec).Run(PolicyKind::kModelGuided);
  SetNumThreads(8);
  const SimulationResult multi =
      SimulationDriver(spec).Run(PolicyKind::kModelGuided);
  SetNumThreads(1);
  ASSERT_TRUE(single.ok()) << single.Summary();
  ASSERT_TRUE(multi.ok()) << multi.Summary();
  EXPECT_EQ(single.final_latency, multi.final_latency);
  EXPECT_EQ(single.offline_seconds, multi.offline_seconds);
  EXPECT_EQ(single.executions, multi.executions);
  EXPECT_EQ(single.timeouts, multi.timeouts);
  EXPECT_EQ(single.explorations, multi.explorations);
  EXPECT_EQ(single.regret_spent, multi.regret_spent);
}

}  // namespace
}  // namespace limeqo::scenarios
