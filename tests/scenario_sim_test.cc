#include <cctype>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "scenarios/scenario.h"
#include "scenarios/simulation.h"
#include "scenarios/synthetic_backend.h"

namespace limeqo::scenarios {
namespace {

// ---------------------------------------------------------------------------
// SyntheticBackend: the generated world itself must honour its contract.
// ---------------------------------------------------------------------------

TEST(SyntheticBackendTest, WorldIsDeterministicFromSpec) {
  ScenarioSpec spec;
  spec.noise_sigma = 0.1;
  SyntheticBackend a(spec);
  SyntheticBackend b(spec);
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      ASSERT_EQ(a.TrueLatency(q, j), b.TrueLatency(q, j));
    }
  }
  // Per-execution noise is keyed by (cell, visit), not call order: visiting
  // cells in different orders observes identical latencies.
  const double first = a.Execute(3, 4, 0.0).observed_latency;
  b.Execute(7, 1, 0.0);
  EXPECT_EQ(b.Execute(3, 4, 0.0).observed_latency, first);
}

TEST(SyntheticBackendTest, DifferentSeedsGiveDifferentWorlds) {
  ScenarioSpec spec;
  SyntheticBackend a(spec);
  spec.seed = spec.seed + 1;
  SyntheticBackend b(spec);
  int differing = 0;
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      if (a.TrueLatency(q, j) != b.TrueLatency(q, j)) ++differing;
    }
  }
  EXPECT_GT(differing, spec.num_queries * spec.num_hints / 2);
}

TEST(SyntheticBackendTest, TimeoutCutsOffAndReportsCensoring) {
  ScenarioSpec spec;
  spec.noise_sigma = 0.0;
  SyntheticBackend backend(spec);
  const double truth = backend.TrueLatency(0, 1);
  const core::BackendResult cut = backend.Execute(0, 1, truth / 2.0);
  EXPECT_TRUE(cut.timed_out);
  EXPECT_DOUBLE_EQ(cut.observed_latency, truth / 2.0);
  const core::BackendResult full = backend.Execute(0, 1, truth * 2.0);
  EXPECT_FALSE(full.timed_out);
  EXPECT_DOUBLE_EQ(full.observed_latency, truth);
  EXPECT_EQ(backend.timeouts_reported(), 1);
  EXPECT_EQ(backend.executions(), 2);
}

TEST(SyntheticBackendTest, EquivalentHintsShareIdenticalLatency) {
  ScenarioSpec spec;
  spec.equivalence_class_size = 3;
  SyntheticBackend backend(spec);
  for (int q = 0; q < spec.num_queries; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      const std::vector<int> cls = backend.EquivalentHints(q, j);
      ASSERT_FALSE(cls.empty());
      for (int other : cls) {
        EXPECT_EQ(backend.TrueLatency(q, other), backend.TrueLatency(q, j))
            << "plan-equivalent hints " << j << " and " << other
            << " disagree on query " << q;
      }
    }
  }
}

TEST(SyntheticBackendTest, DriftMovesRoughlySeverityFractionOfRows) {
  ScenarioSpec spec;
  spec.num_queries = 200;
  SyntheticBackend backend(spec);
  std::vector<double> before(spec.num_queries);
  for (int q = 0; q < spec.num_queries; ++q) {
    before[q] = backend.TrueLatency(q, 0);
  }
  backend.ApplyDrift(0.5);
  int moved = 0;
  for (int q = 0; q < spec.num_queries; ++q) {
    if (backend.TrueLatency(q, 0) != before[q]) ++moved;
  }
  EXPECT_GT(moved, spec.num_queries / 4);
  EXPECT_LT(moved, spec.num_queries * 3 / 4);
}

TEST(SyntheticBackendTest, HeavyTailProducesCatastrophicCells) {
  ScenarioSpec spec;
  spec.tail = TailModel::kParetoMix;
  spec.heavy_tail_prob = 0.1;
  spec.heavy_tail_scale = 25.0;
  spec.num_queries = 100;
  SyntheticBackend backend(spec);
  int catastrophic = 0;
  for (int q = 0; q < spec.num_queries; ++q) {
    const double base = backend.TrueLatency(q, 0);
    for (int j = 1; j < spec.num_hints; ++j) {
      if (backend.TrueLatency(q, j) > 10.0 * base) ++catastrophic;
    }
  }
  EXPECT_GT(catastrophic, 20);
}

// ---------------------------------------------------------------------------
// The scenario grid: every generated configuration, under every policy,
// must satisfy the paper's invariants. On failure the message carries the
// full spec line (including the seed) so the run reproduces from the log.
// ---------------------------------------------------------------------------

class ScenarioGridTest
    : public ::testing::TestWithParam<std::tuple<size_t, PolicyKind>> {};

TEST_P(ScenarioGridTest, InvariantsHold) {
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  const size_t index = std::get<0>(GetParam());
  ASSERT_LT(index, grid.size());
  const ScenarioSpec& spec = grid[index];
  SimulationDriver driver(spec);
  const SimulationResult result = driver.Run(std::get<1>(GetParam()));
  EXPECT_TRUE(result.ok())
      << "invariants violated; reproduce with spec {" << Describe(spec)
      << "}\n"
      << result.Summary();
  // Sanity on the headline numbers: the run actually explored something
  // and the serving latency stayed within [optimal, default]-ish bounds
  // (noise can shift observed sums slightly below true optimum).
  EXPECT_GT(result.executions, 0) << Describe(spec);
  if (spec.online_servings > 0) {
    EXPECT_GT(result.servings, 0) << Describe(spec);
  }
}

std::string GridParamName(
    const ::testing::TestParamInfo<std::tuple<size_t, PolicyKind>>& info) {
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  std::string name = grid[std::get<0>(info.param)].name + "_" +
                     PolicyKindName(std::get<1>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenarioGridTest,
    ::testing::Combine(::testing::Range<size_t>(0, ScenarioGrid().size()),
                       ::testing::Values(PolicyKind::kRandom,
                                         PolicyKind::kGreedy,
                                         PolicyKind::kModelGuided)),
    GridParamName);

TEST(ScenarioGridTest, GridCoversRequiredRegimes) {
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  // The acceptance bar: at least 12 configurations, jointly covering
  // drift, heavy-tail, and timeout regimes.
  EXPECT_GE(grid.size(), 12u);
  int with_drift = 0;
  int with_arrivals = 0;
  int heavy_tail = 0;
  int no_timeouts = 0;
  int tight_timeouts = 0;
  std::set<std::string> names;
  for (const ScenarioSpec& s : grid) {
    names.insert(s.name);
    if (!s.drift.empty()) ++with_drift;
    if (!s.arrivals.empty()) ++with_arrivals;
    if (s.tail == TailModel::kParetoMix && s.heavy_tail_prob > 0.0) {
      ++heavy_tail;
    }
    if (!s.use_timeouts) ++no_timeouts;
    if (s.use_timeouts && s.timeout_alpha < 1.2) ++tight_timeouts;
    EXPECT_GT(s.online_servings, 0)
        << s.name << " skips the online phase, so the regret-budget "
        << "invariant would go unchecked";
  }
  EXPECT_EQ(names.size(), grid.size()) << "duplicate scenario names";
  EXPECT_GE(with_drift, 3);
  EXPECT_GE(with_arrivals, 3);
  EXPECT_GE(heavy_tail, 3);
  EXPECT_GE(no_timeouts, 1);
  EXPECT_GE(tight_timeouts, 1);
}

// ---------------------------------------------------------------------------
// Model-guided exploration should beat Random on a structured world — the
// paper's central Sec. 4.2 claim, now checkable on any generated scenario.
// ---------------------------------------------------------------------------

TEST(ScenarioGridTest, ModelGuidedBeatsRandomOnStructuredWorld) {
  ScenarioSpec spec;
  spec.name = "structured-comparison";
  spec.num_queries = 60;
  spec.latent_rank = 2;
  spec.structure_strength = 0.9;
  spec.budget_fraction = 0.4;
  spec.online_servings = 0;
  spec.seed = 424242;
  const SimulationResult random =
      SimulationDriver(spec).Run(PolicyKind::kRandom);
  const SimulationResult guided =
      SimulationDriver(spec).Run(PolicyKind::kModelGuided);
  ASSERT_TRUE(random.ok()) << random.Summary();
  ASSERT_TRUE(guided.ok()) << guided.Summary();
  // Both start from the same world; the model-guided run must end at least
  // as good (allow 5% slack for tie-break noise on an easy world).
  EXPECT_LE(guided.final_latency, random.final_latency * 1.05)
      << "guided: " << guided.Summary() << "\nrandom: " << random.Summary();
}

// ---------------------------------------------------------------------------
// Whole-pipeline determinism: the same scenario must produce the same
// result object regardless of the linalg thread count.
// ---------------------------------------------------------------------------

TEST(ScenarioGridTest, SimulationIsBitwiseDeterministicAcrossThreadCounts) {
  ScenarioSpec spec = ScenarioGrid()[0];
  SetNumThreads(1);
  const SimulationResult single =
      SimulationDriver(spec).Run(PolicyKind::kModelGuided);
  SetNumThreads(8);
  const SimulationResult multi =
      SimulationDriver(spec).Run(PolicyKind::kModelGuided);
  SetNumThreads(1);
  ASSERT_TRUE(single.ok()) << single.Summary();
  ASSERT_TRUE(multi.ok()) << multi.Summary();
  EXPECT_EQ(single.final_latency, multi.final_latency);
  EXPECT_EQ(single.offline_seconds, multi.offline_seconds);
  EXPECT_EQ(single.executions, multi.executions);
  EXPECT_EQ(single.timeouts, multi.timeouts);
  EXPECT_EQ(single.explorations, multi.explorations);
  EXPECT_EQ(single.regret_spent, multi.regret_spent);
}

}  // namespace
}  // namespace limeqo::scenarios
