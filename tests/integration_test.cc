/// End-to-end tests exercising the whole stack the way the paper's
/// experiments do: workload construction -> offline exploration with a
/// model-guided policy -> online serving with the no-regressions guarantee.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/als.h"
#include "core/explorer.h"
#include "core/online.h"
#include "core/policy.h"
#include "core/simdb_backend.h"
#include "nn/tcnn_predictor.h"
#include "workloads/workloads.h"

namespace limeqo {
namespace {

using core::AlsCompleter;
using core::CompleterPredictor;
using core::ExplorerOptions;
using core::ModelGuidedPolicy;
using core::OfflineExplorer;
using core::SimDbBackend;

TEST(IntegrationTest, LimeQoOnMiniJobReachesNearOptimal) {
  StatusOr<simdb::SimulatedDatabase> db =
      workloads::MakeWorkload(workloads::WorkloadId::kJob, 1.0, 7);
  ASSERT_TRUE(db.ok());
  SimDbBackend backend(&*db);
  ModelGuidedPolicy policy(
      std::make_unique<CompleterPredictor>(std::make_unique<AlsCompleter>()),
      "LimeQO");
  ExplorerOptions opt;
  OfflineExplorer explorer(&backend, &policy, opt);
  // 4x the default workload time: Fig. 5 shows all techniques converge by
  // then; LimeQO should be well inside the default->optimal gap.
  explorer.Explore(4.0 * db->DefaultTotal());
  const double final_latency = explorer.WorkloadLatency();
  const double gap = db->DefaultTotal() - db->OptimalTotal();
  EXPECT_LT(final_latency, db->DefaultTotal() - 0.6 * gap);
  EXPECT_GE(final_latency, db->OptimalTotal() - 1e-6);
}

TEST(IntegrationTest, OnlinePathServesOnlyVerifiedPlans) {
  StatusOr<simdb::SimulatedDatabase> db =
      workloads::MakeWorkload(workloads::WorkloadId::kJob, 0.5, 8);
  ASSERT_TRUE(db.ok());
  SimDbBackend backend(&*db);
  ModelGuidedPolicy policy(
      std::make_unique<CompleterPredictor>(std::make_unique<AlsCompleter>()),
      "LimeQO");
  ExplorerOptions opt;
  OfflineExplorer explorer(&backend, &policy, opt);
  explorer.Explore(db->DefaultTotal());

  core::OnlineOptimizer online(&explorer.matrix());
  int verified = 0;
  for (int i = 0; i < db->num_queries(); ++i) {
    const int h = online.ChooseHint(i);
    // No regression vs the default plan, in true latency.
    EXPECT_LE(db->TrueLatency(i, h), db->TrueLatency(i, 0) + 1e-9);
    verified += h != 0;
  }
  EXPECT_GT(verified, 0);  // exploration found at least some better plans
}

TEST(IntegrationTest, CensoredModeDoesNotHurt) {
  // Compare total latency after equal budgets with censored handling on
  // and off (Sec. 5.5.4's direction: censored helps or ties).
  StatusOr<simdb::SimulatedDatabase> db =
      workloads::MakeWorkload(workloads::WorkloadId::kJob, 1.0, 9);
  ASSERT_TRUE(db.ok());
  auto run = [&](core::CensoredMode mode) {
    SimDbBackend backend(&*db);
    core::AlsOptions als;
    als.censored_mode = mode;
    ModelGuidedPolicy policy(std::make_unique<CompleterPredictor>(
                                 std::make_unique<AlsCompleter>(als)),
                             "LimeQO");
    ExplorerOptions opt;
    OfflineExplorer explorer(&backend, &policy, opt);
    explorer.Explore(db->DefaultTotal());
    return explorer.WorkloadLatency();
  };
  const double with_censored = run(core::CensoredMode::kCensored);
  const double naive = run(core::CensoredMode::kNaiveObserved);
  // Generous slack: stochastic exploration; censored must not be far worse.
  EXPECT_LT(with_censored, naive * 1.15);
}

TEST(IntegrationTest, TcnnPredictorPluggedIntoAlgorithmOne) {
  StatusOr<simdb::SimulatedDatabase> db =
      workloads::MakeWorkload(workloads::WorkloadId::kJob, 0.35, 10);
  ASSERT_TRUE(db.ok());
  SimDbBackend backend(&*db);
  nn::TcnnOptions tcnn;
  tcnn.conv_channels = {8, 4};
  tcnn.fc_hidden = {8};
  tcnn.max_epochs = 10;
  ModelGuidedPolicy policy(
      std::make_unique<nn::TcnnPredictor>(&backend, tcnn, "LimeQO+"),
      "LimeQO+");
  ExplorerOptions opt;
  opt.batch_size = 8;
  OfflineExplorer explorer(&backend, &policy, opt);
  explorer.Explore(db->DefaultTotal());
  EXPECT_LT(explorer.WorkloadLatency(), db->DefaultTotal());
  EXPECT_GT(explorer.matrix().NumComplete(), db->num_queries());
}

TEST(IntegrationTest, WorkloadShiftRecovery) {
  // 70% of queries first, the rest later (Fig. 9's setup, miniature).
  StatusOr<simdb::SimulatedDatabase> db =
      workloads::MakeWorkload(workloads::WorkloadId::kJob, 1.0, 11);
  ASSERT_TRUE(db.ok());
  SimDbBackend backend(&*db);
  ModelGuidedPolicy policy(
      std::make_unique<CompleterPredictor>(std::make_unique<AlsCompleter>()),
      "LimeQO");
  ExplorerOptions opt;
  opt.initial_queries = static_cast<int>(db->num_queries() * 0.7);
  OfflineExplorer explorer(&backend, &policy, opt);
  explorer.Explore(db->DefaultTotal());
  const double before = explorer.WorkloadLatency();
  explorer.AddNewQueries(db->num_queries() - opt.initial_queries);
  // New defaults raise total latency; continued exploration brings it down.
  const double after_add = explorer.WorkloadLatency();
  EXPECT_GT(after_add, before);
  explorer.Explore(db->DefaultTotal());
  EXPECT_LT(explorer.WorkloadLatency(), after_add);
}

TEST(IntegrationTest, DataShiftRecovery) {
  // Explore, shift the data (Stack 2017 -> 2019 style), recover (Fig. 11).
  StatusOr<simdb::SimulatedDatabase> db =
      workloads::MakeWorkload(workloads::WorkloadId::kJob, 1.0, 12);
  ASSERT_TRUE(db.ok());
  SimDbBackend backend(&*db);
  ModelGuidedPolicy policy(
      std::make_unique<CompleterPredictor>(std::make_unique<AlsCompleter>()),
      "LimeQO");
  ExplorerOptions opt;
  OfflineExplorer explorer(&backend, &policy, opt);
  explorer.Explore(db->DefaultTotal());

  simdb::DriftOptions drift;
  drift.severity = 0.3;
  drift.new_default_total = db->DefaultTotal() * 1.25;
  drift.new_optimal_total = db->OptimalTotal() * 1.2;
  db->ApplyDrift(drift);
  explorer.ResetAfterDataShift();
  const double post_shift = explorer.WorkloadLatency();

  explorer.Explore(db->DefaultTotal());
  EXPECT_LT(explorer.WorkloadLatency(), post_shift);
  EXPECT_GE(explorer.WorkloadLatency(), db->OptimalTotal() - 1e-6);
}

}  // namespace
}  // namespace limeqo
