// Workload-shift (AddNewQueries, Fig. 9) under the scenario grid: a
// mid-budget arrival must never corrupt existing observations, new rows
// must join with exactly their default plan class observed, and
// post-arrival exploration must still satisfy offline monotonicity and
// budget accounting. Checked directly against OfflineExplorer, then
// property-tested through the full SimulationDriver on random arrival
// schedules.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/policy.h"
#include "proptest.h"
#include "scenarios/scenario.h"
#include "scenarios/simulation.h"
#include "scenarios/synthetic_backend.h"

namespace limeqo::scenarios {
namespace {

// ---------------------------------------------------------------------------
// Direct OfflineExplorer::AddNewQueries contract.
// ---------------------------------------------------------------------------

TEST(AddNewQueriesTest, PreservesObservationsAndStartsRowsFresh) {
  ScenarioSpec spec;
  spec.num_queries = 30;
  spec.equivalence_class_size = 3;  // default class spans hints {0, 1, 2}
  spec.seed = 21;
  SyntheticBackend backend(spec);
  core::RandomPolicy policy;
  core::ExplorerOptions options;
  options.initial_queries = 20;
  options.seed = 5;
  core::OfflineExplorer explorer(&backend, &policy, options);
  explorer.Explore(0.3 * backend.DefaultWorkloadLatency());

  const core::WorkloadMatrix& m = explorer.matrix();
  ASSERT_EQ(m.num_queries(), 20);
  const linalg::Matrix values = m.values();
  const linalg::Matrix mask = m.mask();
  const linalg::Matrix timeouts = m.timeouts();

  explorer.AddNewQueries(10);
  ASSERT_EQ(m.num_queries(), 30);
  for (int q = 0; q < 20; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      EXPECT_EQ(m.values()(q, j), values(q, j));
      EXPECT_EQ(m.mask()(q, j), mask(q, j));
      EXPECT_EQ(m.timeouts()(q, j), timeouts(q, j));
    }
  }
  for (int q = 20; q < 30; ++q) {
    for (int j = 0; j < spec.num_hints; ++j) {
      const bool default_class = j < spec.equivalence_class_size;
      EXPECT_EQ(m.state(q, j), default_class
                                   ? core::CellState::kComplete
                                   : core::CellState::kUnobserved)
          << "row " << q << " hint " << j;
    }
  }
}

TEST(AddNewQueriesTest, PostArrivalExplorationStaysMonotone) {
  ScenarioSpec spec;
  spec.num_queries = 40;
  spec.seed = 22;
  SyntheticBackend backend(spec);
  core::GreedyPolicy policy;
  core::ExplorerOptions options;
  options.initial_queries = 28;
  options.seed = 6;
  core::OfflineExplorer explorer(&backend, &policy, options);
  const double budget = 0.5 * backend.DefaultWorkloadLatency();
  explorer.Explore(0.5 * budget);
  explorer.AddNewQueries(12);
  const std::vector<core::TrajectoryPoint> after =
      explorer.Explore(0.5 * budget);
  for (size_t t = 1; t < after.size(); ++t) {
    EXPECT_LE(after[t].workload_latency,
              after[t - 1].workload_latency + 1e-9)
        << "post-arrival step " << t;
  }
}

// ---------------------------------------------------------------------------
// Full-driver property: random arrival schedules over random worlds, every
// policy — all invariants (including the arrival-integrity checks the
// driver performs at each event) must hold.
// ---------------------------------------------------------------------------

TEST(ArrivalPropertyTest, RandomArrivalSchedulesKeepAllInvariants) {
  proptest::Config config;
  config.runs = 10;
  proptest::Check(
      "arrival schedules keep scenario invariants",
      [](proptest::Params& p) {
        ScenarioSpec spec;
        spec.name = "arrival-prop";
        spec.num_queries = static_cast<int>(p.Int(12, 50));
        spec.num_hints = static_cast<int>(p.Int(4, 12));
        spec.latent_rank = static_cast<int>(p.Int(1, 4));
        spec.noise_sigma = p.Double(0.0, 0.2);
        spec.equivalence_class_size = static_cast<int>(p.Int(0, 3));
        spec.use_timeouts = p.Bool(0.8);
        spec.budget_fraction = p.Double(0.2, 0.7);
        spec.online_servings = static_cast<int>(p.Int(0, 120));
        spec.seed = static_cast<uint64_t>(p.Int(1, 1 << 30));

        // 1-3 arrival batches, jointly leaving at least 4 initial queries.
        const int batches = static_cast<int>(p.Int(1, 3));
        int remaining = spec.num_queries - 4;
        int scheduled = 0;
        for (int b = 0; b < batches && remaining > 0; ++b) {
          ArrivalEvent a;
          a.after_budget_fraction = p.Double(0.1, 0.95);
          a.count = static_cast<int>(p.Int(1, std::max(1, remaining / 2)));
          remaining -= a.count;
          scheduled += a.count;
          spec.arrivals.push_back(a);
        }
        // Half the cases also drift, interleaving both shift kinds.
        if (p.Bool(0.5)) {
          spec.drift.push_back({p.Double(0.1, 0.9), p.Double(0.1, 0.8)});
        }
        const PolicyKind policy = static_cast<PolicyKind>(p.Int(0, 2));

        const SimulationResult result =
            SimulationDriver(spec).Run(policy, CompleterKind::kAls);
        if (!result.ok()) {
          std::fprintf(stderr, "spec {%s}\n%s\n", Describe(spec).c_str(),
                       result.Summary().c_str());
          return false;
        }
        if (result.arrivals != scheduled) {
          // All scheduled batches must have been applied.
          std::fprintf(stderr, "expected %d arrivals, driver applied %d\n",
                       scheduled, result.arrivals);
          return false;
        }
        return true;
      },
      config);
}

// The grid's arrival worlds must be present and cover the Fig. 9 shape,
// plus the cold-start fleet world where the arrival schedule *is* the
// whole workload.
TEST(ArrivalGridTest, GridContainsArrivalWorlds) {
  int with_arrivals = 0;
  int with_both_shifts = 0;
  int cold_starts = 0;
  for (const ScenarioSpec& s : ScenarioGrid()) {
    if (s.arrivals.empty()) continue;
    ++with_arrivals;
    int arriving = 0;
    for (const ArrivalEvent& a : s.arrivals) arriving += a.count;
    EXPECT_LE(arriving, s.num_queries) << s.name;
    if (arriving == s.num_queries) ++cold_starts;
    if (!s.drift.empty()) ++with_both_shifts;
  }
  EXPECT_GE(with_arrivals, 3);
  EXPECT_GE(with_both_shifts, 1)
      << "need a world where drift and arrivals interleave";
  EXPECT_GE(cold_starts, 1)
      << "need a cold-start fleet world (arrivals cover every query)";
}

// ---------------------------------------------------------------------------
// Cold start: an explorer stood up over an empty workload (zero rows) must
// be fully functional — nothing to explore, nothing observed — and must
// grow into a complete grid world through AddNewQueries alone.
// ---------------------------------------------------------------------------

TEST(ColdStartTest, EmptyExplorerGrowsToFullWorldViaArrivalsAlone) {
  ScenarioSpec spec;
  spec.num_queries = 24;
  spec.equivalence_class_size = 2;
  spec.seed = 23;
  SyntheticBackend backend(spec);
  core::GreedyPolicy policy;
  core::ExplorerOptions options;
  options.initial_queries = 0;  // fleet bring-up: no traffic attached yet
  options.seed = 7;
  core::OfflineExplorer explorer(&backend, &policy, options);

  // The empty engine is legal and inert: no rows, no observations, and an
  // Explore call finds nothing to do (and charges nothing).
  EXPECT_EQ(explorer.matrix().num_queries(), 0);
  explorer.Explore(backend.DefaultWorkloadLatency());
  EXPECT_EQ(explorer.offline_seconds(), 0.0);
  EXPECT_EQ(explorer.num_executions(), 0);

  // Traffic attaches in bursts; every burst joins with exactly its default
  // plan class observed, like any other arrival.
  explorer.AddNewQueries(10);
  explorer.AddNewQueries(14);
  ASSERT_EQ(explorer.matrix().num_queries(), spec.num_queries);
  for (int q = 0; q < spec.num_queries; ++q) {
    EXPECT_TRUE(explorer.matrix().IsComplete(q, 0)) << "row " << q;
  }

  // From here the grown engine explores exactly like a warm-started one.
  const std::vector<core::TrajectoryPoint> trajectory =
      explorer.Explore(0.4 * backend.DefaultWorkloadLatency());
  EXPECT_GT(explorer.num_executions(), 0);
  for (size_t t = 1; t < trajectory.size(); ++t) {
    EXPECT_LE(trajectory[t].workload_latency,
              trajectory[t - 1].workload_latency + 1e-9);
  }
  EXPECT_LT(explorer.WorkloadLatency(), backend.DefaultWorkloadLatency());
}

// The full driver runs the cold-start grid world end to end (offline +
// online serving) with every invariant intact.
TEST(ColdStartTest, ColdStartFleetWorldRunsCleanThroughTheDriver) {
  const std::vector<ScenarioSpec> grid = ScenarioGrid();
  const auto it =
      std::find_if(grid.begin(), grid.end(), [](const ScenarioSpec& s) {
        return s.name == "cold-start-fleet";
      });
  ASSERT_NE(it, grid.end());
  const SimulationResult result =
      SimulationDriver(*it).Run(PolicyKind::kModelGuided, CompleterKind::kAls);
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_EQ(result.arrivals, it->num_queries);
  EXPECT_LT(result.final_latency, result.default_latency);
}

}  // namespace
}  // namespace limeqo::scenarios
